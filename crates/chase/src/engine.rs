//! The chase engine: restricted and oblivious chase with termination control.
//!
//! Each round separates **trigger detection** from **trigger application**:
//! triggers for every TGD are collected against the round's frozen instance
//! (in parallel across [`ChaseConfig::threads`] scoped workers, one task per
//! TGD, via [`vadalog_model::parallel::run_tasks`]) and then applied
//! sequentially in (TGD, trigger) order — null invention, the restricted
//! chase's satisfaction check and provenance recording all happen in the
//! sequential phase, so results and null ids are identical for every thread
//! count.

use crate::provenance::{ChaseGraph, DerivationRecord};
use crate::termination::TerminationPolicy;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;
use vadalog_model::parallel;
use vadalog_model::{
    Atom, ConjunctiveQuery, Database, Instance, JoinSpec, Matcher, NullId, Program, RowId, Symbol,
    Term, Variable,
};

/// Which chase variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseVariant {
    /// The standard (restricted) chase: a trigger fires only if its head is
    /// not already satisfied by an extension of the trigger homomorphism.
    #[default]
    Restricted,
    /// The oblivious chase: every trigger fires exactly once.
    Oblivious,
}

/// Configuration of a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// The chase variant.
    pub variant: ChaseVariant,
    /// The termination policy.
    pub policy: TerminationPolicy,
    /// Whether to record provenance (the chase graph). Disable for large
    /// benchmark runs where only the result instance matters.
    pub record_provenance: bool,
    /// Worker threads for per-round trigger detection (1 = sequential,
    /// 0 = all available parallelism). Trigger application stays sequential,
    /// so results are identical for every thread count.
    pub threads: usize,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            variant: ChaseVariant::default(),
            policy: TerminationPolicy::default(),
            record_provenance: false,
            threads: 1,
        }
    }
}

impl ChaseConfig {
    /// A restricted chase with the given termination policy and provenance
    /// recording enabled.
    pub fn restricted(policy: TerminationPolicy) -> ChaseConfig {
        ChaseConfig {
            variant: ChaseVariant::Restricted,
            policy,
            record_provenance: true,
            threads: 1,
        }
    }

    /// An oblivious chase with the given termination policy.
    pub fn oblivious(policy: TerminationPolicy) -> ChaseConfig {
        ChaseConfig {
            variant: ChaseVariant::Oblivious,
            policy,
            record_provenance: true,
            threads: 1,
        }
    }

    /// Sets the trigger-detection worker thread count.
    pub fn with_threads(mut self, threads: usize) -> ChaseConfig {
        self.threads = threads;
        self
    }
}

/// Counters describing a chase run; the peak-atom counter is the space proxy
/// used by the E1 experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaseStats {
    /// Number of applied triggers (chase steps).
    pub steps: usize,
    /// Number of invented labelled nulls.
    pub nulls_created: usize,
    /// Number of atoms in the final instance.
    pub final_atoms: usize,
    /// Peak number of atoms materialised at any point (equals `final_atoms`
    /// for the chase, but reported separately so that all engines expose the
    /// same space metric).
    pub peak_atoms: usize,
    /// Number of candidate triggers examined.
    pub triggers_examined: usize,
}

/// The result of a chase run.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// The chased instance.
    pub instance: Instance,
    /// Run statistics.
    pub stats: ChaseStats,
    /// `true` iff the chase stopped because no applicable trigger remained
    /// (as opposed to hitting the termination policy).
    pub completed: bool,
    /// The chase graph (empty when provenance recording is disabled).
    pub graph: ChaseGraph,
}

/// The chase engine. Holds the program and configuration; each [`ChaseEngine::run`]
/// call chases one database.
#[derive(Debug, Clone)]
pub struct ChaseEngine {
    program: Program,
    config: ChaseConfig,
}

impl ChaseEngine {
    /// Creates an engine for the given program and configuration.
    pub fn new(program: Program, config: ChaseConfig) -> ChaseEngine {
        ChaseEngine { program, config }
    }

    /// The program being chased.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the chase on a database.
    pub fn run(&self, database: &Database) -> ChaseResult {
        let mut instance = database.as_instance().clone();
        let mut stats = ChaseStats::default();
        let mut graph = ChaseGraph::new();
        let mut null_counter: u64 = 0;
        let mut null_depth: HashMap<NullId, usize> = HashMap::new();
        // For the oblivious chase: fired triggers as (tgd index, body row-id
        // tuple). Row ids are stable in the append-only columnar store, so
        // the trigger key never clones an atom.
        let mut fired: HashSet<(usize, Vec<RowId>)> = HashSet::new();
        let mut completed = true;

        // Compile every TGD once: body join spec for trigger detection, head
        // join spec for the restricted satisfaction check, and the variable
        // plumbing between them.
        let compiled: Vec<CompiledTgd> = self
            .program
            .iter()
            .map(|(_, tgd)| CompiledTgd::new(tgd))
            .collect();
        let mut head_matchers: Vec<Matcher<'_>> = compiled
            .iter()
            .map(|c| {
                let mut m = Matcher::new(&c.head);
                m.set_limit(1);
                m
            })
            .collect();

        loop {
            if !self
                .config
                .policy
                .allows_step(stats.steps, stats.nulls_created)
            {
                completed = false;
                break;
            }
            let mut applied_this_round = false;

            // Trigger detection: one task per TGD against the round's frozen
            // instance, collected in parallel (read-only kernel runs) and
            // applied below in deterministic (TGD, trigger) order. Each body
            // runs a static build/probe plan computed once per round (so
            // composite fused-key probes and fingerprint miss-skipping apply
            // to the chase too); plans depend only on the frozen instance,
            // keeping trigger order identical for every thread count.
            let body_plans: Vec<vadalog_model::JoinPlan> = compiled
                .iter()
                .map(|ctgd| ctgd.body.plan(&instance, &[]))
                .collect();
            let round_triggers: Vec<Vec<Trigger>> =
                parallel::run_tasks(self.config.threads, compiled.len(), |tgd_index| {
                    let ctgd = &compiled[tgd_index];
                    let mut triggers = Vec::new();
                    let mut body_matcher = Matcher::new(&ctgd.body);
                    body_matcher.set_plan(Some(&body_plans[tgd_index]));
                    body_matcher.for_each(&instance, |bindings| {
                        triggers.push(Trigger {
                            values: (0..ctgd.body.num_slots())
                                .map(|s| {
                                    bindings
                                        .get(ctgd.body.var_of(s))
                                        .expect("every body variable is bound by a full match")
                                })
                                .collect(),
                            rows: bindings.matched_rows().to_vec(),
                        });
                        ControlFlow::Continue(())
                    });
                    triggers
                });

            for (tgd_index, tgd) in self.program.iter() {
                let ctgd = &compiled[tgd_index];
                for trigger in &round_triggers[tgd_index] {
                    stats.triggers_examined += 1;
                    if !self
                        .config
                        .policy
                        .allows_step(stats.steps, stats.nulls_created)
                    {
                        completed = false;
                        break;
                    }

                    match self.config.variant {
                        ChaseVariant::Oblivious => {
                            let key = (tgd_index, trigger.rows.clone());
                            if fired.contains(&key) {
                                continue;
                            }
                            fired.insert(key);
                        }
                        ChaseVariant::Restricted => {
                            // Skip if some extension of the trigger already
                            // satisfies the head: prebind the frontier image
                            // and search for any match of the head pattern.
                            let head_matcher = &mut head_matchers[tgd_index];
                            head_matcher.clear();
                            for (slot, &value) in trigger.values.iter().enumerate() {
                                let bound = head_matcher.prebind(ctgd.body.var_of(slot), value);
                                debug_assert!(bound, "fresh matcher cannot conflict");
                            }
                            let mut satisfied = false;
                            head_matcher.for_each(&instance, |_| {
                                satisfied = true;
                                ControlFlow::Break(())
                            });
                            if satisfied {
                                continue;
                            }
                        }
                    }

                    // Generation depth of the nulls this trigger would create:
                    // one more than the deepest null among the frontier images.
                    // TGDs are constant- and null-free, so the nulls of the
                    // premise images are exactly the nulls among the trigger's
                    // slot values.
                    let premise_depth = trigger
                        .values
                        .iter()
                        .filter_map(Term::as_null)
                        .map(|n| null_depth.get(&n).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0);
                    let new_depth = premise_depth + 1;
                    if !ctgd.existentials.is_empty()
                        && !self.config.policy.allows_null_depth(new_depth)
                    {
                        // Too deep: suppress this trigger (but keep chasing).
                        completed = false;
                        continue;
                    }

                    // Extend the trigger with fresh nulls for the existential
                    // variables and add the head images.
                    let nulls: Vec<(Variable, Term)> = ctgd
                        .existentials
                        .iter()
                        .map(|&z| {
                            let null = NullId(null_counter);
                            null_counter += 1;
                            stats.nulls_created += 1;
                            null_depth.insert(null, new_depth);
                            (z, Term::Null(null))
                        })
                        .collect();
                    let mut conclusions = Vec::new();
                    for head_atom in &tgd.head {
                        let atom = ctgd.instantiate(head_atom, &trigger.values, &nulls);
                        if instance
                            .insert(atom.clone())
                            .expect("head image is variable-free")
                        {
                            conclusions.push(atom);
                        }
                    }
                    stats.steps += 1;
                    applied_this_round = true;
                    if self.config.record_provenance && !conclusions.is_empty() {
                        graph.record(DerivationRecord {
                            tgd_index,
                            premises: tgd
                                .body
                                .iter()
                                .map(|a| ctgd.instantiate(a, &trigger.values, &[]))
                                .collect(),
                            conclusions,
                        });
                    }
                }
            }

            if !applied_this_round {
                break;
            }
        }

        stats.final_atoms = instance.len();
        stats.peak_atoms = instance.len();
        ChaseResult {
            instance,
            stats,
            completed,
            graph,
        }
    }

    /// Chases the database and evaluates the query over the result, returning
    /// the certain answers (Proposition 2.1). Answers containing nulls are
    /// discarded by CQ evaluation, which runs through the sharded CQ kernel
    /// on [`ChaseConfig::threads`] workers (answer sets are thread-count
    /// independent).
    pub fn certain_answers(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
    ) -> BTreeSet<Vec<Symbol>> {
        query.evaluate_with_threads(&self.run(database).instance, self.config.threads)
    }
}

/// A TGD with its join machinery compiled once per chase run.
struct CompiledTgd {
    /// The body pattern, driving trigger detection.
    body: JoinSpec,
    /// The head pattern, driving the restricted-chase satisfaction check.
    head: JoinSpec,
    existentials: Vec<Variable>,
}

impl CompiledTgd {
    fn new(tgd: &vadalog_model::Tgd) -> CompiledTgd {
        CompiledTgd {
            body: JoinSpec::compile(&tgd.body),
            head: JoinSpec::compile(&tgd.head),
            existentials: tgd.existential_variables().into_iter().collect(),
        }
    }

    /// The image of `atom` under a trigger given as body-slot values,
    /// extended with fresh nulls for existential variables.
    fn instantiate(&self, atom: &Atom, values: &[Term], nulls: &[(Variable, Term)]) -> Atom {
        self.body.image_with(atom, values, |v| {
            nulls.iter().find(|&&(w, _)| w == v).map(|&(_, n)| n)
        })
    }
}

/// One collected trigger: the body homomorphism as a dense slot-value tuple
/// plus the matched body rows (the oblivious chase's dedup key).
struct Trigger {
    values: Vec<Term>,
    rows: Vec<RowId>,
}

impl ChaseResult {
    /// Evaluates a query over the chased instance.
    pub fn instance_answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` for Boolean queries that hold in the chased instance.
    pub fn boolean_answer(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// One-shot convenience function: chases `database` under `program` with the
/// given configuration and returns the certain answers to `query`.
pub fn certain_answers(
    program: &Program,
    database: &Database,
    query: &ConjunctiveQuery,
    config: ChaseConfig,
) -> BTreeSet<Vec<Symbol>> {
    ChaseEngine::new(program.clone(), config).certain_answers(database, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn run_chase(rules: &str, facts: &str, config: ChaseConfig) -> ChaseResult {
        let program = parse_rules(rules).unwrap();
        let db = parse(facts).unwrap().database;
        ChaseEngine::new(program, config).run(&db)
    }

    #[test]
    fn transitive_closure_terminates_and_is_complete() {
        let result = run_chase(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
            "edge(a, b). edge(b, c). edge(c, d).",
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        assert!(result.completed);
        // 3 edges + 6 pairs of the transitive closure.
        assert_eq!(result.instance.len(), 3 + 6);
        assert!(result.instance.contains(&Atom::fact("t", &["a", "d"])));
        assert_eq!(result.stats.nulls_created, 0);
    }

    #[test]
    fn existential_rules_invent_nulls() {
        let result = run_chase(
            "r(X, Z) :- p(X).",
            "p(a). p(b).",
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        assert!(result.completed);
        assert_eq!(result.stats.nulls_created, 2);
        assert_eq!(result.instance.len(), 4);
    }

    #[test]
    fn restricted_chase_does_not_refire_satisfied_heads() {
        // Once r(a, ⊥) exists the restricted chase must not create another
        // null for the same p(a).
        let result = run_chase(
            "r(X, Z) :- p(X).",
            "p(a).",
            ChaseConfig::restricted(TerminationPolicy::MaxSteps(100)),
        );
        assert!(result.completed);
        assert_eq!(result.stats.nulls_created, 1);
    }

    #[test]
    fn infinite_chase_is_cut_by_null_depth_policy() {
        // P(x) → ∃z R(x,z); R(x,y) → P(y): the restricted chase runs forever,
        // the depth bound stops it.
        let result = run_chase(
            "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).",
            "p(a).",
            ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(3)),
        );
        assert!(!result.completed);
        assert!(result.stats.nulls_created <= 4);
        assert!(result.instance.len() >= 4);
    }

    #[test]
    fn infinite_chase_is_cut_by_step_policy() {
        let result = run_chase(
            "r(X, Z) :- p(X).\n p(Y) :- r(X, Y).",
            "p(a).",
            ChaseConfig::restricted(TerminationPolicy::MaxSteps(10)),
        );
        assert!(!result.completed);
        assert!(result.stats.steps <= 10);
    }

    #[test]
    fn oblivious_chase_fires_triggers_once() {
        let result = run_chase(
            "t(X, Y) :- edge(X, Y).",
            "edge(a, b). edge(b, c).",
            ChaseConfig::oblivious(TerminationPolicy::Unbounded),
        );
        assert!(result.completed);
        assert_eq!(result.stats.steps, 2);
        assert_eq!(result.instance.len(), 4);
    }

    #[test]
    fn certain_answers_match_proposition_2_1() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let db = parse("edge(a, b). edge(b, c).").unwrap().database;
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let answers = certain_answers(
            &program,
            &db,
            &query,
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        assert_eq!(answers.len(), 3);
        assert!(answers.contains(&vec![Symbol::new("a"), Symbol::new("c")]));
    }

    #[test]
    fn answers_never_contain_nulls() {
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        let db = parse("p(a).").unwrap().database;
        let q_out = parse_query("?(X, Z) :- r(X, Z).").unwrap();
        let answers = certain_answers(
            &program,
            &db,
            &q_out,
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        assert!(answers.is_empty());
        // The Boolean projection holds, though.
        let q_bool = parse_query("? :- r(X, Z).").unwrap();
        let engine = ChaseEngine::new(
            program,
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        assert!(engine.run(&db).boolean_answer(&q_bool));
    }

    #[test]
    fn provenance_tracks_derivations() {
        let result = run_chase(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
            "edge(a, b). edge(b, c).",
            ChaseConfig::restricted(TerminationPolicy::Unbounded),
        );
        let t_ac = Atom::fact("t", &["a", "c"]);
        let record = result.graph.derivation_of(&t_ac).expect("t(a,c) derived");
        assert_eq!(record.tgd_index, 1);
        assert!(result.graph.depth_of(&t_ac) >= 2);
    }

    #[test]
    fn parallel_trigger_detection_is_identical_to_sequential() {
        let rules =
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n r(X, W) :- t(X, Y).";
        let facts = "edge(a, b). edge(b, c). edge(c, d). edge(d, b).";
        let sequential = run_chase(
            rules,
            facts,
            ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(3)),
        );
        for threads in [2, 4] {
            let sharded = run_chase(
                rules,
                facts,
                ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(3)).with_threads(threads),
            );
            assert_eq!(sharded.stats.steps, sequential.stats.steps);
            assert_eq!(sharded.stats.nulls_created, sequential.stats.nulls_created);
            assert_eq!(
                sharded.stats.triggers_examined,
                sequential.stats.triggers_examined
            );
            // Null invention happens in the sequential apply phase, so even
            // the invented null ids — and with them the full row layouts —
            // must coincide.
            assert_eq!(
                sharded.instance.row_layout(),
                sequential.instance.row_layout()
            );
        }
    }

    #[test]
    fn owl_example_chase_produces_expected_inferences() {
        let rules = "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).";
        let facts = "subclass(student, person). subclass(person, agent).\n\
             type(alice, student). type(alice, enrolled).\n\
             restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).";
        let program = parse_rules(rules).unwrap();
        let db = parse(facts).unwrap().database;
        let engine = ChaseEngine::new(
            program,
            ChaseConfig::restricted(TerminationPolicy::MaxNullDepth(4)),
        );
        let result = engine.run(&db);
        // Subclass closure and type propagation.
        assert!(result
            .instance
            .contains(&Atom::fact("subclassStar", &["student", "agent"])));
        assert!(result
            .instance
            .contains(&Atom::fact("type", &["alice", "person"])));
        assert!(result
            .instance
            .contains(&Atom::fact("type", &["alice", "agent"])));
        // alice gets a triple for the restriction of enrolled, and the inverse
        // rule produces a reversed triple over the invented null.
        let q = parse_query("? :- triple(alice, hasCourse, C).").unwrap();
        assert!(result.boolean_answer(&q));
        let q_inv = parse_query("? :- triple(C, courseOf, alice).").unwrap();
        assert!(result.boolean_answer(&q_inv));
    }
}
