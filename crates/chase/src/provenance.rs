//! Provenance of chase-derived atoms: the chase graph of Section 4.2.
//!
//! The chase graph `G_{D,Σ}` has the atoms of `chase(D, Σ)` as nodes and an
//! edge `(α, β)` labelled `(σ, h)` whenever β was derived by firing σ with a
//! trigger h whose image contains α. The proof of Theorems 4.8/4.9 unravels
//! this graph; here it is exposed for inspection, testing and the engine's
//! termination heuristics.

use std::collections::HashMap;
use vadalog_model::Atom;

/// The record of a single chase step: which TGD fired, on which body image,
/// and which atoms it produced.
#[derive(Debug, Clone)]
pub struct DerivationRecord {
    /// Index of the TGD in the program.
    pub tgd_index: usize,
    /// The images of the body atoms under the trigger homomorphism.
    pub premises: Vec<Atom>,
    /// The atoms added by this step (head images; possibly already present
    /// atoms are not listed).
    pub conclusions: Vec<Atom>,
}

/// The chase graph: derivation records plus an index from each derived atom
/// to the record that first produced it.
#[derive(Debug, Default, Clone)]
pub struct ChaseGraph {
    records: Vec<DerivationRecord>,
    derived_by: HashMap<Atom, usize>,
}

impl ChaseGraph {
    /// Creates an empty chase graph.
    pub fn new() -> ChaseGraph {
        ChaseGraph::default()
    }

    /// Records a chase step.
    pub fn record(&mut self, record: DerivationRecord) {
        let idx = self.records.len();
        for atom in &record.conclusions {
            self.derived_by.entry(atom.clone()).or_insert(idx);
        }
        self.records.push(record);
    }

    /// All derivation records, in chase order.
    pub fn records(&self) -> &[DerivationRecord] {
        &self.records
    }

    /// The record that first derived `atom`, if it was derived (database atoms
    /// have no derivation).
    pub fn derivation_of(&self, atom: &Atom) -> Option<&DerivationRecord> {
        self.derived_by.get(atom).map(|&i| &self.records[i])
    }

    /// The direct premises of a derived atom (its parents in the chase graph);
    /// empty for database atoms.
    pub fn parents_of(&self, atom: &Atom) -> &[Atom] {
        self.derivation_of(atom)
            .map(|r| r.premises.as_slice())
            .unwrap_or(&[])
    }

    /// The *derivation depth* of an atom: 0 for database atoms, otherwise one
    /// more than the maximum depth of its premises. Uses memoisation; cycles
    /// cannot occur because every conclusion is recorded after its premises.
    pub fn depth_of(&self, atom: &Atom) -> usize {
        let mut memo: HashMap<Atom, usize> = HashMap::new();
        self.depth_rec(atom, &mut memo)
    }

    fn depth_rec(&self, atom: &Atom, memo: &mut HashMap<Atom, usize>) -> usize {
        if let Some(&d) = memo.get(atom) {
            return d;
        }
        let depth = match self.derivation_of(atom) {
            None => 0,
            Some(record) => {
                1 + record
                    .premises
                    .iter()
                    .map(|p| self.depth_rec(p, memo))
                    .max()
                    .unwrap_or(0)
            }
        };
        memo.insert(atom.clone(), depth);
        depth
    }

    /// Number of recorded chase steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivations_are_indexed_by_first_producer() {
        let mut g = ChaseGraph::new();
        let a = Atom::fact("edge", &["a", "b"]);
        let t1 = Atom::fact("t", &["a", "b"]);
        g.record(DerivationRecord {
            tgd_index: 0,
            premises: vec![a.clone()],
            conclusions: vec![t1.clone()],
        });
        // A second derivation of the same atom does not override the first.
        g.record(DerivationRecord {
            tgd_index: 1,
            premises: vec![a.clone(), t1.clone()],
            conclusions: vec![t1.clone()],
        });
        assert_eq!(g.len(), 2);
        assert_eq!(g.derivation_of(&t1).unwrap().tgd_index, 0);
        assert_eq!(g.parents_of(&t1), std::slice::from_ref(&a));
        assert!(g.derivation_of(&a).is_none());
    }

    #[test]
    fn depth_counts_derivation_layers() {
        let mut g = ChaseGraph::new();
        let e = Atom::fact("edge", &["a", "b"]);
        let t1 = Atom::fact("t", &["a", "b"]);
        let t2 = Atom::fact("t", &["a", "c"]);
        g.record(DerivationRecord {
            tgd_index: 0,
            premises: vec![e.clone()],
            conclusions: vec![t1.clone()],
        });
        g.record(DerivationRecord {
            tgd_index: 1,
            premises: vec![e.clone(), t1.clone()],
            conclusions: vec![t2.clone()],
        });
        assert_eq!(g.depth_of(&e), 0);
        assert_eq!(g.depth_of(&t1), 1);
        assert_eq!(g.depth_of(&t2), 2);
    }
}
