//! Zero-dependency structured tracing for the vadalog engine and service.
//!
//! The model of this crate is deliberately small: a **span** is a named
//! interval with a process-unique id, the id of the span that was open on
//! the same thread when it started (its parent), start/end timestamps in
//! monotonic nanoseconds and a free-form `key=value` payload; an **event**
//! is a zero-length span. Finished records land in a bounded per-thread
//! ring buffer and are collected with a global [`drain`].
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Tracing is off by default; the
//!    fast path of [`span`] and [`event`] is a single relaxed atomic load
//!    and a branch. No allocation, no clock read, no thread-local touch.
//! 2. **No locks on the record path.** Each thread owns a single-producer
//!    ring; the producer never blocks and never waits for the drainer. A
//!    full ring drops the newest record (bounded memory beats complete
//!    traces) and counts the drop.
//! 3. **Deterministic tests.** The clock is pluggable: the default reads
//!    a process-wide monotonic clock, the manual clock is a global atomic
//!    counter that advances by one on every read, so span timestamps in
//!    tests are exact small integers.
//!
//! Consumers are expected to be *observational only*: nothing in this
//! crate feeds back into evaluation, so enabling tracing must never
//! change answers or engine counters (the workspace property-tests this).
//!
//! The per-slot `full` flag makes the ring a Lamport-style SPSC queue:
//! the producer is the owning thread, and consumers (the global drain)
//! are serialized by the registry lock, so each slot sees exactly one
//! writer at a time with acquire/release handoff.

use std::cell::{Cell, UnsafeCell};
use std::fmt::{Display, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of each per-thread ring (power of two). At ~100 bytes per
/// record this bounds tracing memory to a few hundred KiB per thread.
pub const RING_CAPACITY: usize = 4096;

/// One finished span or event, as handed out by [`drain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Process-unique id of this span (never 0).
    pub span_id: u64,
    /// Id of the span open on the same thread when this one started, or 0
    /// for a root span.
    pub parent: u64,
    /// Static name of the instrumentation site, e.g. `"datalog.round"`.
    pub kind: &'static str,
    /// Start timestamp in monotonic nanoseconds (manual-clock ticks in
    /// tests).
    pub start_nanos: u64,
    /// End timestamp; equals `start_nanos` only for events under the
    /// monotonic clock (the manual clock advances between the two reads).
    pub end_nanos: u64,
    /// Space-separated `key=value` pairs recorded while the span was open.
    pub payload: String,
}

impl TraceRecord {
    /// Wall duration of the span in nanoseconds (0 for events).
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

// --- global switches -----------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static MANUAL_CLOCK: AtomicBool = AtomicBool::new(false);
static MANUAL_NOW: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Turn tracing on or off globally. Off is the default; while off, spans
/// and events cost one atomic load and record nothing.
pub fn set_enabled(enabled: bool) {
    // Touch the epoch while cheap so the first traced span does not pay
    // the one-time `Instant::now` initialisation inside its interval.
    let _ = epoch();
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switch to the deterministic manual clock: every clock read returns the
/// next value of a global counter, so timestamps in tests are exact.
pub fn use_manual_clock() {
    MANUAL_NOW.store(0, Ordering::Relaxed);
    MANUAL_CLOCK.store(true, Ordering::Relaxed);
}

/// Switch back to the default monotonic clock.
pub fn use_monotonic_clock() {
    MANUAL_CLOCK.store(false, Ordering::Relaxed);
}

fn now_nanos() -> u64 {
    if MANUAL_CLOCK.load(Ordering::Relaxed) {
        MANUAL_NOW.fetch_add(1, Ordering::Relaxed)
    } else {
        epoch().elapsed().as_nanos() as u64
    }
}

// --- per-thread rings ----------------------------------------------------

struct Slot {
    full: AtomicBool,
    value: UnsafeCell<Option<TraceRecord>>,
}

/// Bounded single-producer ring. The producer is the thread that owns the
/// ring (via thread-local storage); consumers go through [`drain`], which
/// serializes them behind the registry lock. The per-slot `full` flag
/// carries the acquire/release handoff in both directions, so the
/// `UnsafeCell` is never accessed by two threads at once.
struct Ring {
    slots: Box<[Slot]>,
    /// Next slot to pop; written only by consumers (under the registry
    /// lock).
    head: AtomicUsize,
    /// Next slot to push; written only by the producer thread.
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: see the struct docs — slot values are protected by the `full`
// flag protocol (single producer, mutex-serialized consumers).
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new() -> Self {
        let slots = (0..RING_CAPACITY)
            .map(|_| Slot {
                full: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: push or drop (never blocks).
    fn push(&self, record: TraceRecord) {
        let tail = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[tail & (RING_CAPACITY - 1)];
        if slot.full.load(Ordering::Acquire) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Safety: `full` was false with acquire ordering, so the last
        // consumer's `take` happened-before this write, and no other
        // producer exists for this ring.
        unsafe {
            *slot.value.get() = Some(record);
        }
        slot.full.store(true, Ordering::Release);
        self.tail.store(tail.wrapping_add(1), Ordering::Relaxed);
    }

    /// Consumer side: pop the oldest record, if any. Callers must hold
    /// the registry lock.
    fn pop(&self) -> Option<TraceRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[head & (RING_CAPACITY - 1)];
        if !slot.full.load(Ordering::Acquire) {
            return None;
        }
        // Safety: `full` was true with acquire ordering, so the
        // producer's write happened-before; consumers are serialized by
        // the registry lock.
        let record = unsafe { (*slot.value.get()).take() };
        slot.full.store(false, Ordering::Release);
        self.head.store(head.wrapping_add(1), Ordering::Relaxed);
        record
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    static LOCAL_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::new());
        registry().lock().expect("trace registry poisoned").push(ring.clone());
        ring
    };
}

fn push_record(record: TraceRecord) {
    // `try_with` so spans that finish during thread teardown are dropped
    // silently instead of panicking.
    let _ = LOCAL_RING.try_with(|ring| ring.push(record));
}

/// Drain every thread's ring into one list, ordered by start timestamp
/// (ties broken by span id, so manual-clock output is fully
/// deterministic). Records produced concurrently with the drain may be
/// picked up by the next drain.
pub fn drain() -> Vec<TraceRecord> {
    let rings = registry().lock().expect("trace registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        while let Some(record) = ring.pop() {
            out.push(record);
        }
    }
    out.sort_by_key(|r| (r.start_nanos, r.span_id));
    out
}

/// Total records dropped so far because a thread's ring was full.
pub fn records_dropped() -> u64 {
    let rings = registry().lock().expect("trace registry poisoned");
    rings
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

// --- spans and events ----------------------------------------------------

/// RAII guard for an open span. Records itself into the thread's ring
/// when dropped; inert (all methods free) when tracing was disabled at
/// creation.
pub struct Span {
    id: u64,
    parent: u64,
    kind: &'static str,
    start: u64,
    payload: String,
}

impl Span {
    /// Whether this span will record anything. Use to skip expensive
    /// payload computation at call sites.
    pub fn active(&self) -> bool {
        self.id != 0
    }

    /// Append one `key=value` pair to the payload. Free when inactive;
    /// the value is only formatted when the span records.
    pub fn kv(&mut self, key: &str, value: impl Display) {
        if self.id == 0 {
            return;
        }
        if !self.payload.is_empty() {
            self.payload.push(' ');
        }
        let _ = write!(self.payload, "{key}={value}");
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let _ = CURRENT_PARENT.try_with(|c| c.set(self.parent));
        push_record(TraceRecord {
            span_id: self.id,
            parent: self.parent,
            kind: self.kind,
            start_nanos: self.start,
            end_nanos: now_nanos(),
            payload: std::mem::take(&mut self.payload),
        });
    }
}

/// Open a span. While the returned guard lives, spans and events started
/// on the same thread have it as their parent. Returns an inert guard
/// when tracing is disabled.
pub fn span(kind: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span {
            id: 0,
            parent: 0,
            kind,
            start: 0,
            payload: String::new(),
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT
        .try_with(|c| {
            let p = c.get();
            c.set(id);
            p
        })
        .unwrap_or(0);
    Span {
        id,
        parent,
        kind,
        start: now_nanos(),
        payload: String::new(),
    }
}

/// Record an instantaneous event under the current span. The payload
/// closure runs only when tracing is enabled.
pub fn event(kind: &'static str, payload: impl FnOnce() -> String) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT.try_with(|c| c.get()).unwrap_or(0);
    let now = now_nanos();
    push_record(TraceRecord {
        span_id: id,
        parent,
        kind,
        start_nanos: now,
        end_nanos: now,
        payload: payload(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The crate's state is global, so tests serialize on one lock and
    /// start from a drained, disabled world.
    fn with_exclusive_tracing(f: impl FnOnce()) {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = drain();
        use_manual_clock();
        set_enabled(true);
        f();
        set_enabled(false);
        use_monotonic_clock();
        let _ = drain();
    }

    #[test]
    fn disabled_records_nothing_and_is_inert() {
        with_exclusive_tracing(|| {
            set_enabled(false);
            let mut s = span("noop");
            assert!(!s.active());
            s.kv("ignored", 1);
            drop(s);
            event("noop.event", || unreachable!("payload must not run"));
            assert!(drain().is_empty());
        });
    }

    #[test]
    fn spans_nest_and_timestamps_are_deterministic() {
        with_exclusive_tracing(|| {
            {
                let mut outer = span("outer");
                outer.kv("k", "v");
                outer.kv("n", 7);
                {
                    let _inner = span("inner");
                    event("tick", || "beat=1".to_string());
                }
            }
            let records = drain();
            assert_eq!(records.len(), 3);
            let outer = records.iter().find(|r| r.kind == "outer").unwrap();
            let inner = records.iter().find(|r| r.kind == "inner").unwrap();
            let tick = records.iter().find(|r| r.kind == "tick").unwrap();
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.parent, outer.span_id);
            assert_eq!(tick.parent, inner.span_id);
            assert_eq!(outer.payload, "k=v n=7");
            assert_eq!(tick.payload, "beat=1");
            // Manual clock: every read advances by one, and the outer
            // span closes last.
            assert!(outer.start_nanos < inner.start_nanos);
            assert!(inner.end_nanos < outer.end_nanos);
            assert_eq!(tick.start_nanos, tick.end_nanos);
        });
    }

    #[test]
    fn parent_restores_after_sibling_spans() {
        with_exclusive_tracing(|| {
            let root = span("root");
            let root_id = root.id;
            {
                let _a = span("a");
            }
            {
                let b = span("b");
                assert_eq!(b.parent, root_id);
            }
            drop(root);
            let records = drain();
            let a = records.iter().find(|r| r.kind == "a").unwrap();
            let b = records.iter().find(|r| r.kind == "b").unwrap();
            assert_eq!(a.parent, root_id);
            assert_eq!(b.parent, root_id);
        });
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        with_exclusive_tracing(|| {
            let before = records_dropped();
            for i in 0..(RING_CAPACITY + 10) {
                event("flood", || format!("i={i}"));
            }
            let records = drain();
            assert_eq!(records.len(), RING_CAPACITY);
            assert_eq!(records_dropped() - before, 10);
            // The oldest records survive; the overflow is dropped.
            assert_eq!(records[0].payload, "i=0");
        });
    }

    #[test]
    fn drain_collects_across_threads() {
        with_exclusive_tracing(|| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    std::thread::spawn(move || {
                        let mut s = span("worker");
                        s.kv("thread", t);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let records = drain();
            let workers: Vec<_> = records.iter().filter(|r| r.kind == "worker").collect();
            assert_eq!(workers.len(), 4);
            // All four are roots of their own threads.
            assert!(workers.iter().all(|r| r.parent == 0));
        });
    }
}
