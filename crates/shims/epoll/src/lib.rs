//! Offline stand-in for a readiness-notification crate (the build
//! environment has no network access, so `mio`/`polling` are unavailable):
//! a thin, **safe** wrapper over the Linux `epoll(7)` and `eventfd(2)`
//! syscalls via direct libc FFI, with exactly the surface the
//! `vadalog-service` reactor needs.
//!
//! All `unsafe` in the workspace's transport lives here, behind safe
//! functions, so the service crate itself can keep `#![forbid(unsafe_code)]`.
//! The wrapper is memory-safe by construction: every call passes either a
//! caller-supplied raw fd (the kernel validates fds; a stale fd yields
//! `EBADF`, never UB) or buffers whose lengths are taken from the Rust
//! slices themselves.
//!
//! Linux-only, like the reactor it serves. The interest flags are re-exported
//! as plain `u32` constants matching `<sys/epoll.h>`.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

/// The fd (or listener/waker) is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd is writable (send buffer has room).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI); naturally
/// aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification: the `token` the fd was registered with and
/// the ready `events` mask (`EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / …).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Ready-state bits.
    pub events: u32,
    /// The registration's token.
    pub token: u64,
}

/// An epoll instance. Registrations are level-triggered (the default and
/// the forgiving mode: a fd stays ready until drained).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it. A bad
        // `fd` is reported as EBADF, not UB.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes an existing registration's interest mask (and token).
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes a registration. Harmless to call for an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, EPOLLIN, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None`: wait forever), appending the notifications to
    /// `events` (cleared first). Returns the notification count; 0 on
    /// timeout. `EINTR` is reported as a count of 0, not an error.
    pub fn wait(&self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<usize> {
        events.clear();
        const CAPACITY: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 1 ns timeout does not busy-spin at 0 ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
        };
        // SAFETY: the buffer pointer and capacity come from the same local
        // array; the kernel writes at most `CAPACITY` entries.
        let n = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), CAPACITY as c_int, timeout_ms) };
        if n < 0 {
            let error = io::Error::last_os_error();
            if error.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(error);
        }
        for event in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct field by field.
            let (bits, token) = (event.events, event.data);
            events.push(Event {
                events: bits,
                token,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an owned fd exactly once.
        unsafe { close(self.fd) };
    }
}

/// A cross-thread wake-up for an epoll loop, built on a nonblocking
/// `eventfd`. Register [`Waker::fd`] for `EPOLLIN`; any thread may call
/// [`Waker::wake`]; the loop calls [`Waker::drain`] when the fd reports
/// readable.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with the epoll instance (interest: `EPOLLIN`).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the next (or current) `epoll_wait` return. Infallible by
    /// design: the only failure mode of writing to a nonblocking eventfd is
    /// an already-pending wake (`EAGAIN` at the counter cap), which is the
    /// desired state anyway.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakes so the fd stops reporting readable.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live stack value.
        while unsafe { read(self.fd, (&mut counter as *mut u64).cast(), 8) } == 8 {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing an owned fd exactly once.
        unsafe { close(self.fd) };
    }
}

// The waker is shared between the reactor and worker/handle threads; it is
// just an fd, and eventfd reads/writes are thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Shrinks (or grows) a socket's kernel receive buffer. Test harnesses use
/// a tiny receive buffer to simulate a slow consumer deterministically.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let value = bytes as c_int;
    // SAFETY: optval/optlen describe the same live c_int.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&value as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    Ok(())
}

/// Shrinks (or grows) a socket's kernel send buffer — the companion knob
/// for making write-side backpressure reproducible in tests.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let value = bytes as c_int;
    // SAFETY: optval/optlen describe the same live c_int.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&value as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.fd(), EPOLLIN, 7).unwrap();

        let mut events = Vec::new();
        // Nothing pending: times out.
        let n = epoll
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0);

        waker.wake();
        waker.wake(); // coalesces
        let n = epoll
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].events & EPOLLIN != 0);

        waker.drain();
        let n = epoll
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0, "drained waker must stop reporting readable");
    }

    #[test]
    fn sockets_report_readable_and_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let n = epoll
            .wait(Some(Duration::from_millis(2000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].events & EPOLLIN != 0);
        let mut buf = [0u8; 8];
        let read = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..read], b"ping");

        // Writable interest fires immediately on an idle socket…
        epoll.modify(server.as_raw_fd(), EPOLLOUT, 42).unwrap();
        let n = epoll
            .wait(Some(Duration::from_millis(2000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].events & EPOLLOUT != 0);

        // …and a peer hang-up is reported once interest includes RDHUP.
        epoll
            .modify(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        drop(client);
        let n = epoll
            .wait(Some(Duration::from_millis(2000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].events & (EPOLLRDHUP | EPOLLHUP | EPOLLIN) != 0);

        epoll.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn recv_buffer_can_be_shrunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_recv_buffer(client.as_raw_fd(), 4096).unwrap();
        set_send_buffer(client.as_raw_fd(), 4096).unwrap();
    }
}
