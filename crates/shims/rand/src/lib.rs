//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The build environment has no network access, so the real crates.io
//! `rand` cannot be vendored; the workload generators only need a seeded,
//! reproducible PRNG with `gen_range`, `gen::<f64>()` and `gen_bool`, which
//! this crate provides on top of a SplitMix64 core.
//!
//! The streams are **not** compatible with crates.io `rand` — only the API
//! shape is. Every generator in this workspace is seeded explicitly, so
//! reproducibility within this repository is all that matters.

#![forbid(unsafe_code)]

/// Core trait: a source of uniformly distributed `u64`s plus the convenience
/// methods the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in the given half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }

    /// A uniformly distributed value of type `T` (here: `f64` in `[0, 1)`,
    /// `u64`, `u32`, or `bool`).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleRange: Copy {
    /// Maps 64 random bits into the range.
    fn sample(bits: u64, range: &std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: &std::ops::Range<Self>) -> Self {
                let span = (range.end as i128) - (range.start as i128);
                assert!(span > 0, "cannot sample from an empty range");
                let offset = (bits as u128 % span as u128) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

impl SampleRange for f64 {
    fn sample(bits: u64, range: &std::ops::Range<Self>) -> Self {
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible from 64 raw random bits.
pub trait SampleUniform {
    /// Maps 64 random bits into the type's uniform distribution.
    fn from_bits(bits: u64) -> Self;
}

impl SampleUniform for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleUniform for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl SampleUniform for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl SampleUniform for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
