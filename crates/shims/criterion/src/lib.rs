//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace's benches use. The build environment has no network access, so
//! the real criterion cannot be vendored; this shim keeps the bench sources
//! unchanged and reports simple wall-clock statistics (min / mean over a
//! fixed number of timed samples after a warm-up run).
//!
//! It is intentionally tiny: no statistical analysis, no plotting, no CLI
//! filtering beyond accepting (and ignoring) criterion's usual flags.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The entry point handed to bench functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.sample_size, &mut f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.sample_size, &mut f);
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&id.to_string(), self.sample_size, &mut |b| f(b, input));
    }

    /// Finishes the group (printing nothing extra in this shim).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure under measurement; `iter` times one closure call
/// per sample.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up (also warms lazy indexes/caches)
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name}: mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Declares the list of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
