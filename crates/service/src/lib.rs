//! The live materialisation service: a long-lived front door over an
//! incrementally maintained instance.
//!
//! The paper's system is a *service*: facts arrive continuously and
//! certain-answer queries are served against the maintained
//! materialisation. This crate provides that front door on top of
//! [`vadalog_datalog::IncrementalEngine`] (re-exported here): a
//! line-oriented TCP protocol served by [`LiveServer`], with ingestion and
//! query serving decoupled through epoch snapshots
//! ([`vadalog_model::InstanceSnapshot`]) so reads run concurrently with
//! writes.
//!
//! # Protocol reference
//!
//! One request per line; every response is one or more `\n`-terminated
//! lines. The first response token is always `OK` or `ERR`.
//!
//! | Request | Response |
//! |---|---|
//! | `FACT <fact>.` | `OK inserted=<n> duplicate=<n> derived=<n> strata_skipped=<n> rounds=<n> epoch=<e>` |
//! | `BATCH <fact>. <fact>. …` | same as `FACT` (one evaluation for the whole batch) |
//! | `QUERY [MODE=<MAGIC\|FULL\|AUTO>] [TIMEOUT_MS=<ms>] [MAX_ROWS=<n>] ?(X, …) :- body.` | `OK answers=<n> epoch=<e>`, then **exactly `n`** tuple lines (whitespace-separated constants, sorted; constants containing whitespace, quotes or control characters come back `"`-quoted with `\"`/`\\`/`\n` escapes), then `END` — or `ERR deadline timeout_ms=<ms>` / `ERR row-limit max_rows=<n>` when a budget trips |
//! | `EXPLAIN [MODE=<MAGIC\|FULL\|AUTO>] ?(X, …) :- body.` | `OK explain=<n> epoch=<e> magic=<bool>`, then **exactly `n`** plan lines, then `END`. Returns the plan *without evaluating*: the query's adornment, the magic-vs-full decision (with the fallback reason when the rewrite does not apply), and per-rule join plans — build/probe order, index kind and estimated fan-out per step. Consults (and warms) the specialised-program cache, so the header is truthful about what a subsequent `QUERY` would do. `TIMEOUT_MS`/`MAX_ROWS` are rejected — nothing runs |
//! | `PROFILE [MODE=…] [TIMEOUT_MS=<ms>] [MAX_ROWS=<n>] ?(X, …) :- body.` | `OK profile=<n> answers=<a> epoch=<e> path=<magic\|full> [cache=<hit\|miss>]`, then **exactly `n`** phase lines (`phase=rewrite`, `phase=seed`, one `phase=stratum stratum=<s> round=<r> wall_micros=… delta_rows=… derived_rows=… join_probes=… rows_prededuped=…` per fixpoint round, `phase=answer`, and a final `totals …` line), then `END`. Evaluates the query exactly like `QUERY` (same budgets, same answers) but returns the per-phase breakdown instead of the tuples |
//! | `VALIDATE <rules>` | `OK diagnostics=<n> errors=<e> warnings=<w> admissible=<bool>`, then **exactly `n`** diagnostic lines (`VLG0xx <severity> [tgd=<i>] [atom=body[j]\|head[j]] [var=<V>] [pred=<p>] :: <message>`, parseable back via [`protocol::parse_diagnostic_line`]), then `END`. The candidate is analysed against the serving schema ([`vadalog_analysis::diagnostics`]); nothing is loaded. Under the default fail-closed [`AdmissionPolicy`], error-severity findings make the verdict `admissible=false` |
//! | `STATS` | `OK` followed by one JSON object on the same line (see **STATS schema** below). Never shed under overload |
//! | `STATS SLOW=<n>` | `OK slow=<k> threshold_micros=<t\|disabled>`, then **exactly `k`** slow-query lines (newest first, `wall_micros=… verb=… <summary> query=…`), then `END`. Reads the bounded slow-query ring (capacity 64) |
//! | `METRICS` | `OK metrics=<n>`, then **exactly `n`** Prometheus text-exposition lines (`# HELP`/`# TYPE` comments and `name{labels} value` samples — see **METRICS exposition** below), then `END`. Never shed under overload |
//! | `SNAPSHOT` | `OK snapshot epoch=<e>` after durably snapshotting the instance and truncating the WAL (a no-op `OK` on a volatile server) |
//! | `SHUTDOWN` | `OK bye`; the server stops accepting connections, answers queued-but-unstarted requests `ERR shutting-down`, completes in-flight work, flushes the WAL and appends the clean-shutdown marker. Never shed under overload |
//!
//! Two structured errors come from the transport rather than the handler:
//! `ERR overloaded retry_ms=<hint>` (admission control shed the connection
//! or request — retry after the hinted backoff) and `ERR shutting-down`
//! (the request arrived during drain).
//!
//! Clients must frame query answers by the header's `answers=<n>` count —
//! read exactly `n` tuple lines, then the `END` line — rather than scanning
//! for `END`: the count makes the framing independent of tuple *content*
//! (a constant named `END` is a legal answer). Every multi-line response
//! frames the same way, by its own label: `diagnostics=<n>`, `explain=<n>`,
//! `profile=<n>`, `metrics=<n>`, `slow=<n>`.
//!
//! # STATS schema
//!
//! The `STATS` JSON object is versioned: its first field is
//! `"schema_version"` ([`STATS_SCHEMA_VERSION`], currently `1`). New fields
//! are additive and do *not* bump the version; removals or renames do.
//! Fields, in order:
//!
//! | Field | Meaning |
//! |---|---|
//! | `schema_version` | STATS schema version (this table describes `1`) |
//! | `epoch` | Published snapshot epoch (bumps on every applied ingest) |
//! | `atoms` | Rows in the live materialisation |
//! | `derived_atoms` / `peak_atoms` / `iterations` | Engine totals: rows ever derived, high-water mark, fixpoint rounds |
//! | `joins_evaluated` / `join_probes` / `composite_probes` / `probe_misses_filtered` / `rows_prededuped` | Join-kernel counters: join evaluations, index probes (composite-key subset broken out), probes skipped by the existence filter, rows deduplicated before insert |
//! | `strata_skipped` / `rounds_incremental` | Incremental-maintenance savings: strata proven unaffected, delta-only rounds |
//! | `index_bytes` | Approximate index memory footprint |
//! | `wal_records` / `wal_bytes` | Write-ahead-log length (records, bytes) since the last truncation |
//! | `snapshots_written` / `snapshot_failures` | Durable snapshot attempts (`SNAPSHOT` verb + cadence) |
//! | `programs_rejected` / `diagnostics_emitted` | Admission outcomes: `VALIDATE` verdicts refused fail-closed, total diagnostics produced |
//! | `magic_queries` / `magic_cache_hits` / `demanded_tuples` / `full_materialised_tuples` | Demand-driven split: queries that took the magic path, specialised-program cache hits, scratch tuples derived on demand, size of the full materialisation |
//! | `slow_queries` | Records currently retained in the slow-query ring |
//! | `transport` | `connections_accepted` / `connections_rejected` / `connections_closed` / `requests_received` / `requests_served` / `requests_failed` / `queries_shed` / `queue_depth_max`. At quiescence `requests_received == requests_served + queries_shed + requests_failed` |
//! | `latency` | One object per verb (`query`, `fact`, `batch`, `explain`, `profile`, `validate`, `stats`, `metrics`, `snapshot`, `shutdown`), each `count`/`total_micros`/`max_micros`/`p50_micros`/`p95_micros`/`p99_micros`. `count`/`total`/`max` are exact; percentiles are log-bucketed (≤ 25% relative error). The per-verb counts sum to `requests_served` at quiescence |
//! | `degraded` | `true` while admission control is shedding |
//!
//! # METRICS exposition
//!
//! `METRICS` renders the same counters in Prometheus text format, all
//! names prefixed `vadalog_`. Monotone engine/service totals are
//! `counter`s (`vadalog_iterations_total`, `vadalog_join_probes_total`,
//! `vadalog_snapshots_written_total`, `vadalog_magic_queries_total`,
//! `vadalog_requests_served_total`, …); point-in-time values are `gauge`s
//! (`vadalog_epoch`, `vadalog_atoms`, `vadalog_index_bytes`,
//! `vadalog_wal_bytes`, `vadalog_queue_depth_max`, `vadalog_slow_queries`,
//! `vadalog_degraded`); and per-verb request latency is one `histogram`
//! family, `vadalog_request_duration_micros` with a `verb` label —
//! cumulative `_bucket{le=…}` series (empty buckets elided, `+Inf`
//! mandatory) plus `_sum` and `_count` per verb. The suite's
//! exposition-format validator test parses every emitted line.
//!
//! # Tracing
//!
//! The request lifecycle is instrumented with [`vadalog_obs`] spans —
//! `service.request`, the WAL's `wal.append`/`wal.fsync`,
//! `snapshot.write`, `recovery.replay`, and the engine-side spans beneath
//! them. Tracing is **off by default** and near-zero-cost while disabled;
//! enabling it never changes answers or counters (bit-identity is
//! property-tested). Queries whose wall time crosses
//! [`ServerConfig::slow_query_micros`] additionally record a compact
//! profile summary into the slow-query ring served by `STATS SLOW=<n>`.
//!
//! # Demand-driven queries
//!
//! `MODE=` selects the query path. `FULL` answers from the served
//! materialisation. `MAGIC` prefers the demand-driven path
//! ([`vadalog_datalog::DemandEngine`]): the query is rewritten with magic
//! sets, the specialised program is compiled once per binding-pattern
//! signature and cached, and evaluation runs in a scratch instance layered
//! over the published snapshot — deriving only the tuples the bound
//! constants demand. `AUTO` (the default) takes the magic path whenever the
//! query has at least one bound column and the rewrite applies, and the
//! full path otherwise; `MODE=MAGIC` is a preference, not a correctness
//! switch — unspecialisable queries silently fall back, and answers are
//! identical on either path. `STATS` exposes the split: `magic_queries`,
//! `magic_cache_hits` and cumulative `demanded_tuples` versus
//! `full_materialised_tuples` (the size of the live materialisation).
//!
//! # Admission
//!
//! The server is **fail-closed** by default ([`AdmissionPolicy::FailClosed`]):
//! `VALIDATE` verdicts with error-severity diagnostics answer
//! `admissible=false` and bump the `programs_rejected` counter, and `FACT` /
//! `BATCH` requests targeting a *derived* predicate of the serving program
//! are refused with `ERR` — rules own those relations, and asserting into
//! them would silently mix asserted and derived tuples. Warnings are
//! admitted but counted in `diagnostics_emitted`.
//! [`AdmissionPolicy::WarnOnly`] restores the legacy permissive behaviour
//! while keeping the counters. A fail-closed server also refuses to *start*
//! over a serving program that itself fails validation.
//!
//! Facts and queries use the crate's surface syntax
//! ([`vadalog_model::parser`]): `edge(a, b).`, `?(X) :- t(a, X).` and so
//! on. Errors — parse errors, arity conflicts, dictionary overflow
//! ([`vadalog_model::ModelError::PackOverflow`]) and the per-relation row
//! budget ([`vadalog_model::ModelError::CapacityExceeded`]) — come back as
//! a single `ERR <message>` line. A rejected batch leaves the live instance
//! untouched (the engine validates before applying), so the connection and
//! the service remain fully usable afterwards.
//!
//! # Concurrency model
//!
//! * Ingests serialise on a mutex around the [`IncrementalEngine`]; each
//!   successful ingest publishes a fresh epoch snapshot.
//! * Queries clone the published snapshot handle (an `Arc` bump under a
//!   briefly-held read lock) and evaluate against the frozen instance with
//!   **no lock held** — a long query never blocks an ingest and vice versa.
//! * The transport is a **readiness-based reactor** (see below): requests
//!   are handled by a fixed worker pool, so concurrency is bounded by
//!   [`ServerConfig`], not by how many sockets are open.
//!
//! # Transport architecture
//!
//! The front door is one epoll **reactor thread** (over the offline
//! `epoll` shim crate — thin safe wrappers on `epoll(7)`/`eventfd(2)`; the
//! service crate itself forbids `unsafe`) plus a fixed **worker pool**:
//!
//! * The reactor owns the nonblocking listener and every connection's
//!   read/write buffers, reassembles request lines, and keeps per-request
//!   FIFO ordering by queueing parse errors alongside parsed requests.
//!   Requests are dispatched (at most one in flight per connection) to a
//!   bounded job queue; workers run the transport-free request handler
//!   under `catch_unwind` and post replies back through an eventfd waker.
//! * **Admission policy knobs** ([`ServerConfig`]): `max_connections`
//!   (accept-time cap), `max_queue_depth` (request-time cap),
//!   `worker_threads` (in-flight cap), `overload_retry_ms` (the backoff
//!   hint carried by `ERR overloaded`), `idle_timeout` (optional reaper).
//! * **Degradation ladder** under rising load: (1) requests queue, up to
//!   `max_queue_depth`; (2) further requests are shed with
//!   `ERR overloaded retry_ms=<hint>` — connections survive, `STATS`,
//!   `METRICS` and `SHUTDOWN` stay exempt; (3) accepts beyond `max_connections` are
//!   rejected with the same error and closed; (4) misbehaving peers
//!   (slow-loris writers, stalled readers, over-`max_line_bytes` lines)
//!   are cut individually by the reactor's timer wheel. Shedding never
//!   corrupts state: a shed request performed no engine work at all.
//!
//! # Durability model
//!
//! A [`LiveServer`] can serve a [`DurableEngine`]
//! ([`LiveServer::start_with`]), which enforces **WAL-before-mutate**:
//! every batch is appended to a checksummed, length-prefixed write-ahead
//! log ([`wal`]) — and fsynced, under the default [`SyncPolicy::Always`] —
//! *before* the engine applies it. Snapshots ([`snapshot`]) serialise the
//! packed instance atomically (tmp + rename) and truncate the log, either
//! on a cadence ([`DurabilityConfig::snapshot_every`]) or on demand (the
//! `SNAPSHOT` verb). [`DurableEngine::recover`] restores the snapshot,
//! replays the WAL tail — skipping records the snapshot already covers and
//! dropping (not fataling on) a torn or corrupt tail — and yields a state
//! **bit-identical** to the uncrashed engine's, as enforced by the
//! fault-injection suite and the `recovery` bench harness. Acknowledged
//! batches are never lost; a batch logged but unacknowledged at the crash
//! may be replayed (the usual at-least-once window).
//!
//! # Robustness
//!
//! Query budgets default to [`ServerConfig`]'s `default_timeout` /
//! `default_max_rows` (both unlimited unless set) and can be overridden
//! per request with `TIMEOUT_MS=` / `MAX_ROWS=`; exceeded budgets answer
//! structured `ERR deadline …` / `ERR row-limit …` lines and the kernels
//! stop cooperatively (a cancellation flag polled every
//! [`vadalog_model::BUDGET_POLL_INTERVAL`] probes). The transport caps
//! request lines at `max_line_bytes`, cuts off stalled partial lines after
//! `line_timeout` (slow-loris defence), and survives malformed, non-UTF-8
//! and half-written input — each answers a single `ERR` line or a clean
//! close, never a dead server. A handler that panics mid-write poisons the
//! engine mutex: subsequent writes answer `ERR engine-unavailable` while
//! queries keep serving the last published snapshot, and a restart
//! recovers from the WAL. Fault-injection sites ([`failpoints`], debug
//! builds only) let tests kill the durability pipeline at every seam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
pub mod failpoints;
mod histogram;
mod metrics;
pub mod protocol;
mod reactor;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use durability::{DurabilityConfig, DurableEngine, RecoveryReport, ServiceError};
pub use protocol::{parse_diagnostic_line, parse_request, Request, Response};
pub use server::{AdmissionPolicy, LiveServer, ServerConfig, STATS_SCHEMA_VERSION};
pub use vadalog_analysis::{Diagnostic, DiagnosticCode, Severity};
pub use vadalog_datalog::{IncrementalEngine, IngestOutcome};
pub use wal::SyncPolicy;
