//! The live materialisation service: a long-lived front door over an
//! incrementally maintained instance.
//!
//! The paper's system is a *service*: facts arrive continuously and
//! certain-answer queries are served against the maintained
//! materialisation. This crate provides that front door on top of
//! [`vadalog_datalog::IncrementalEngine`] (re-exported here): a
//! line-oriented TCP protocol served by [`LiveServer`], with ingestion and
//! query serving decoupled through epoch snapshots
//! ([`vadalog_model::InstanceSnapshot`]) so reads run concurrently with
//! writes.
//!
//! # Protocol reference
//!
//! One request per line; every response is one or more `\n`-terminated
//! lines. The first response token is always `OK` or `ERR`.
//!
//! | Request | Response |
//! |---|---|
//! | `FACT <fact>.` | `OK inserted=<n> duplicate=<n> derived=<n> strata_skipped=<n> rounds=<n> epoch=<e>` |
//! | `BATCH <fact>. <fact>. …` | same as `FACT` (one evaluation for the whole batch) |
//! | `QUERY ?(X, …) :- body.` | `OK answers=<n> epoch=<e>`, then **exactly `n`** tuple lines (whitespace-separated constants, sorted; constants containing whitespace, quotes or control characters come back `"`-quoted with `\"`/`\\`/`\n` escapes), then `END` |
//! | `STATS` | `OK` followed by one JSON object on the same line |
//! | `SHUTDOWN` | `OK bye`; the server stops accepting connections |
//!
//! Clients must frame query answers by the header's `answers=<n>` count —
//! read exactly `n` tuple lines, then the `END` line — rather than scanning
//! for `END`: the count makes the framing independent of tuple *content*
//! (a constant named `END` is a legal answer).
//!
//! Facts and queries use the crate's surface syntax
//! ([`vadalog_model::parser`]): `edge(a, b).`, `?(X) :- t(a, X).` and so
//! on. Errors — parse errors, arity conflicts, dictionary overflow
//! ([`vadalog_model::ModelError::PackOverflow`]) and the per-relation row
//! budget ([`vadalog_model::ModelError::CapacityExceeded`]) — come back as
//! a single `ERR <message>` line. A rejected batch leaves the live instance
//! untouched (the engine validates before applying), so the connection and
//! the service remain fully usable afterwards.
//!
//! # Concurrency model
//!
//! * Ingests serialise on a mutex around the [`IncrementalEngine`]; each
//!   successful ingest publishes a fresh epoch snapshot.
//! * Queries clone the published snapshot handle (an `Arc` bump under a
//!   briefly-held read lock) and evaluate against the frozen instance with
//!   **no lock held** — a long query never blocks an ingest and vice versa.
//! * The listener runs **thread-per-connection** over blocking `std::net`
//!   sockets. The connection loop is deliberately thin — read line, call
//!   the pure-ish request handler, write the rendered response — so an
//!   async runtime can later replace the transport without touching the
//!   protocol or the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{parse_request, Request, Response};
pub use server::LiveServer;
pub use vadalog_datalog::{IncrementalEngine, IngestOutcome};
