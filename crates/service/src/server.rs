//! The thread-per-connection TCP front door (see the [crate docs](crate)
//! for the protocol and the concurrency model).

use crate::protocol::{parse_request, Request, Response};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use vadalog_datalog::IncrementalEngine;
use vadalog_model::InstanceSnapshot;

/// The state shared between the accept loop and the connection handlers.
struct Shared {
    /// The live engine; ingests serialise here.
    engine: Mutex<IncrementalEngine>,
    /// The snapshot queries run against, republished after every ingest.
    /// Readers hold the lock only for the `Arc` clone.
    published: RwLock<InstanceSnapshot>,
    /// Worker threads for the sharded CQ kernel.
    threads: usize,
    /// Set by `SHUTDOWN`; the accept loop re-checks it per connection.
    shutdown: AtomicBool,
    /// The bound address, used to self-connect and wake a blocking accept.
    addr: SocketAddr,
}

/// Serves one request against the shared state. This is the whole protocol
/// semantics; the socket loop around it only moves lines.
fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ingest(facts) => {
            let mut engine = shared.engine.lock().expect("engine lock poisoned");
            match engine.ingest(&facts) {
                Ok(outcome) => {
                    // Publish while still holding the engine lock: were the
                    // engine released first, a concurrent ingest could
                    // publish a *newer* epoch in the gap and this store
                    // would regress the served snapshot to a stale one.
                    // Lock order is always engine → published, and queries
                    // take only `published`, so this cannot deadlock.
                    let snapshot = engine.snapshot();
                    *shared.published.write().expect("snapshot lock poisoned") = snapshot;
                    drop(engine);
                    Response::ingest(&outcome)
                }
                // A rejected batch left the instance untouched (the engine
                // validates before applying) — report and keep serving.
                Err(error) => Response::Error(error.to_string()),
            }
        }
        Request::Query(query) => {
            let snapshot = shared
                .published
                .read()
                .expect("snapshot lock poisoned")
                .clone();
            // No lock is held here: the query runs against the frozen
            // snapshot, concurrently with any in-flight ingest.
            let answers = query.evaluate_with_threads(&snapshot, shared.threads);
            Response::Answers {
                epoch: snapshot.epoch(),
                tuples: answers.into_iter().collect(),
            }
        }
        Request::Stats => {
            let engine = shared.engine.lock().expect("engine lock poisoned");
            let stats = engine.stats();
            Response::Ok(format!(
                "{{\"epoch\":{},\"atoms\":{},\"derived_atoms\":{},\"iterations\":{},\
                 \"rounds_incremental\":{},\"strata_skipped\":{},\"joins_evaluated\":{},\
                 \"join_probes\":{},\"index_bytes\":{}}}",
                engine.epoch(),
                engine.instance().len(),
                stats.derived_atoms,
                stats.iterations,
                stats.rounds_incremental,
                stats.strata_skipped,
                stats.joins_evaluated,
                stats.join_probes,
                engine.instance().index_bytes(),
            ))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop out of its blocking `accept`.
            let _ = TcpStream::connect(shared.addr);
            Response::Ok("bye".into())
        }
    }
}

/// Reads request lines off one connection until EOF (or `SHUTDOWN`),
/// writing one rendered response per request.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = match parse_request(&line) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                (handle_request(shared, request), is_shutdown)
            }
            Err(message) => (Response::Error(message), false),
        };
        if writer.write_all(response.render().as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if is_shutdown {
            break;
        }
    }
}

/// A running live-materialisation server: a listener thread accepting
/// connections, each served by its own thread against the shared engine.
pub struct LiveServer {
    addr: SocketAddr,
    accept: JoinHandle<()>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving the given engine. The engine may already hold a
    /// materialisation — its current state is published as the first
    /// snapshot.
    pub fn start(engine: IncrementalEngine, addr: impl ToSocketAddrs) -> std::io::Result<LiveServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = engine.threads();
        let published = RwLock::new(engine.snapshot());
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            published,
            threads,
            shutdown: AtomicBool::new(false),
            addr,
        });
        let accept = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || {
                let mut connections: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Reap handlers whose client already disconnected, so a
                    // long-lived server does not accumulate one handle per
                    // connection it ever served.
                    connections.retain(|connection| !connection.is_finished());
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    connections.push(std::thread::spawn(move || {
                        serve_connection(&shared, stream)
                    }));
                }
                // Drain the handlers of already-accepted connections; they
                // exit when their client disconnects.
                for connection in connections {
                    let _ = connection.join();
                }
            }
        });
        Ok(LiveServer { addr, accept })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to stop: `SHUTDOWN` stops the accept loop, and
    /// the loop then drains the remaining connection handlers (each ends
    /// when its client disconnects).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    const TWO_CLOSURES: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                                s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).";

    fn start(engine: IncrementalEngine) -> LiveServer {
        LiveServer::start(engine, "127.0.0.1:0").expect("bind loopback")
    }

    /// A minimal blocking protocol client for the tests.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect to live server");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            Client {
                reader,
                writer: BufWriter::new(stream),
            }
        }

        /// Sends one request line and reads the full response: one line, or
        /// — for query answers — the header plus exactly `answers=<n>`
        /// tuple lines plus the `END` line (framing by count, as the
        /// protocol requires).
        fn send(&mut self, line: &str) -> Vec<String> {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("write request");
            self.writer.flush().expect("flush request");
            let mut lines = vec![self.read_line()];
            if let Some(rest) = lines[0].strip_prefix("OK answers=") {
                let count: usize = rest
                    .split_whitespace()
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("answer count in header");
                for _ in 0..count {
                    let tuple = self.read_line();
                    lines.push(tuple);
                }
                let end = self.read_line();
                assert_eq!(end, "END", "answers must terminate with END");
                lines.push(end);
            }
            lines
        }

        fn read_line(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            line.trim_end_matches('\n').to_string()
        }
    }

    fn engine() -> IncrementalEngine {
        IncrementalEngine::new(parse_rules(TWO_CLOSURES).unwrap()).unwrap()
    }

    #[test]
    fn full_protocol_round_trip_over_loopback() {
        let server = start(engine());
        let addr = server.addr();
        let mut client = Client::connect(addr);

        let batch = client.send("BATCH edge(a, b). edge(b, c). link(p, q).");
        // t-stratum: seed + 2 semi-naive rounds; s-stratum: seed + 1.
        assert_eq!(
            batch,
            vec!["OK inserted=3 duplicate=0 derived=4 strata_skipped=0 rounds=5 epoch=1"]
        );
        let fact = client.send("FACT edge(c, d).");
        assert!(fact[0].starts_with("OK inserted=1 "), "{fact:?}");
        assert!(fact[0].contains("strata_skipped=1"), "link stratum untouched: {fact:?}");

        let answers = client.send("QUERY ?(X) :- t(X, d).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "a", "b", "c", "END"]);
        let pairs = client.send("QUERY ?(X, Y) :- s(X, Y).");
        assert_eq!(pairs, vec!["OK answers=1 epoch=2", "p q", "END"]);

        let stats = client.send("STATS");
        assert!(stats[0].starts_with("OK {\"epoch\":2,"), "{stats:?}");
        assert!(stats[0].contains("\"rounds_incremental\""), "{stats:?}");

        // Unknown and malformed requests keep the connection alive.
        assert!(client.send("NOPE")[0].starts_with("ERR unknown command"));
        assert!(client.send("QUERY ?(X) :- ")[0].starts_with("ERR "));
        assert!(client.send("FACT edge(a b).")[0].starts_with("ERR "));
        let still = client.send("QUERY ? :- t(a, d).");
        assert_eq!(still, vec!["OK answers=1 epoch=2", "", "END"]);

        // A constant that renders exactly as the terminator keyword: the
        // count-based framing keeps the answer distinguishable from `END`.
        client.send("FACT edge(\"END\", zz).");
        let tricky = client.send("QUERY ?(X) :- edge(X, zz).");
        assert_eq!(tricky, vec!["OK answers=1 epoch=3", "END", "END"]);

        assert_eq!(client.send("SHUTDOWN"), vec!["OK bye"]);
        drop(client);
        server.join();
    }

    #[test]
    fn rejected_batches_leave_the_service_fully_usable() {
        let server = start(engine().with_row_capacity(3));
        let mut client = Client::connect(server.addr());

        client.send("BATCH edge(a, b). edge(b, c).");
        // 2 existing + 2 incoming > 3: rejected as a protocol error, not a
        // dead server — and not a half-applied batch.
        let err = client.send("BATCH edge(c, d). edge(d, e).");
        assert!(err[0].starts_with("ERR relation `edge` is full"), "{err:?}");
        let answers = client.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(answers[0], "OK answers=3 epoch=1", "{answers:?}");

        // The service keeps ingesting up to the budget.
        let ok = client.send("FACT edge(c, d).");
        assert!(ok[0].starts_with("OK inserted=1 "), "{ok:?}");
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "b", "c", "d", "END"]);

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn queries_are_served_from_epoch_snapshots_across_connections() {
        let server = start(engine());
        let addr = server.addr();
        let mut writer_conn = Client::connect(addr);
        let mut reader_conn = Client::connect(addr);

        writer_conn.send("FACT edge(a, b).");
        let before = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(before[0], "OK answers=1 epoch=1");

        // A second connection's ingest is visible to the first reader's
        // next query, with a bumped epoch.
        writer_conn.send("FACT edge(b, c).");
        let after = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(after[0], "OK answers=3 epoch=2");

        // Concurrent readers all see a consistent snapshot.
        let handles: Vec<std::thread::JoinHandle<String>> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    c.send("QUERY ?(X, Y) :- t(X, Y).")[0].clone()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "OK answers=3 epoch=2");
        }

        reader_conn.send("SHUTDOWN");
        drop(reader_conn);
        drop(writer_conn);
        server.join();
    }
}
