//! The TCP front door: protocol semantics (`handle_request`) plus the
//! server lifecycle around the readiness-based transport in the `reactor`
//! module (see the [crate docs](crate) for the protocol, the concurrency
//! model and the durability model).
//!
//! # Robustness
//!
//! The transport defends itself against slow, broken, and *too many*
//! clients:
//!
//! * One epoll reactor thread multiplexes every connection; a fixed worker
//!   pool evaluates requests. A slow query occupies a worker, never the
//!   event loop — accepts, reads, timeouts and `SHUTDOWN` stay responsive
//!   under load.
//! * Admission control degrades gracefully instead of collapsing: accepts
//!   beyond [`ServerConfig::max_connections`] and requests beyond
//!   [`ServerConfig::max_queue_depth`] answer a structured
//!   `ERR overloaded retry_ms=<hint>` (`STATS`, `METRICS` and `SHUTDOWN`
//!   are exempt,
//!   so an operator can always diagnose and end an overload).
//! * A line must fit in [`ServerConfig::max_line_bytes`] and complete
//!   within [`ServerConfig::line_timeout`] of its first byte — the
//!   slow-loris hole (one byte per minute, forever) closes a connection.
//!   The same deadline cuts off clients that stop reading their answers,
//!   and [`ServerConfig::idle_timeout`] optionally reaps silent sockets.
//! * A panicked writer poisons the engine mutex; subsequent writes answer
//!   `ERR engine-unavailable` while queries keep serving from the last
//!   published snapshot (reads never need the engine lock). The process
//!   can be restarted to recover the WAL — mid-ingest state is never
//!   trusted.
//! * Shutdown drains: the listener closes, queued-but-unstarted requests
//!   answer `ERR shutting-down`, in-flight requests complete and flush,
//!   then the WAL gets its clean-shutdown marker. An eventfd waker makes
//!   programmatic shutdown prompt — no self-connect hack.

use crate::durability::DurableEngine;
use crate::failpoints;
use crate::metrics::{self, SlowQueryLog, SlowQueryRecord, Verb, VerbLatencies};
use crate::protocol::{QueryMode, Request, Response};
use crate::reactor::{self, TransportCounters};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vadalog_analysis::{analyze_source, AnalyzerOptions};
use vadalog_datalog::{explain_query, DemandEngine, DemandError, IncrementalEngine};
use vadalog_model::{BudgetExceeded, ConjunctiveQuery, InstanceSnapshot, Predicate, QueryBudget};

/// What the server does with programs and facts that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Error-severity diagnostics reject (`VALIDATE` answers
    /// `admissible=false`, facts targeting derived predicates answer
    /// `ERR`); warnings are counted but admitted. The default.
    #[default]
    FailClosed,
    /// Everything is admitted; diagnostics are still emitted and counted.
    WarnOnly,
}

/// Transport limits and query-budget defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default wall-clock budget for queries that do not pass
    /// `TIMEOUT_MS` (`None`: unlimited).
    pub default_timeout: Option<Duration>,
    /// Default answer-count cap for queries that do not pass `MAX_ROWS`
    /// (`None`: unlimited).
    pub default_max_rows: Option<usize>,
    /// Hard cap on one request line; longer lines answer `ERR` and close.
    pub max_line_bytes: usize,
    /// A started line must complete within this long of its first byte;
    /// the same deadline bounds how long a written-but-unread reply may
    /// stall before its connection is cut.
    pub line_timeout: Duration,
    /// The reactor's tick: epoll wait timeout and timer-wheel granularity
    /// — also how quickly the transport observes a shutdown request.
    pub poll_interval: Duration,
    /// What happens to candidate programs with error-severity diagnostics
    /// and to facts targeting derived predicates.
    pub admission: AdmissionPolicy,
    /// Concurrent-connection cap: accepts beyond it answer
    /// `ERR overloaded retry_ms=<hint>` and close immediately.
    pub max_connections: usize,
    /// Pending job-queue depth cap: requests arriving while this many are
    /// queued (excluding in-flight) are shed with the same structured
    /// overload error; the connection survives. `STATS` and `SHUTDOWN`
    /// are exempt.
    pub max_queue_depth: usize,
    /// Worker-pool size — the in-flight request cap. `0` picks
    /// `max(2, available parallelism)`.
    pub worker_threads: usize,
    /// The `retry_ms` hint carried by `ERR overloaded` responses.
    pub overload_retry_ms: u64,
    /// Reap connections with no traffic in this long (`None`: idle
    /// sockets live until shutdown — they cost a buffer, not a thread).
    pub idle_timeout: Option<Duration>,
    /// Clamp each accepted socket's kernel send buffer (`SO_SNDBUF`) to
    /// roughly this many bytes (`None`: kernel autotuning). Bounding the
    /// kernel's absorption makes the stalled-reader cutoff deterministic:
    /// a peer that stops reading backs up into the reactor's user-space
    /// write buffer quickly, where the write-stall deadline can see it.
    pub send_buffer_bytes: Option<usize>,
    /// `QUERY` / `PROFILE` requests whose handler wall time reaches this
    /// many microseconds record a profile summary into the bounded
    /// slow-query log, retrievable via `STATS SLOW=<n>` (`None`: the log
    /// is disabled). Defaults to one second.
    pub slow_query_micros: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            default_timeout: None,
            default_max_rows: None,
            max_line_bytes: 1 << 20,
            line_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            admission: AdmissionPolicy::FailClosed,
            max_connections: 1024,
            max_queue_depth: 128,
            worker_threads: 0,
            overload_retry_ms: 100,
            idle_timeout: None,
            send_buffer_bytes: None,
            slow_query_micros: Some(1_000_000),
        }
    }
}

/// Version of the `STATS` JSON schema, reported as the object's first
/// field. Bumped whenever a field is removed or changes meaning; additive
/// fields do not bump it.
pub const STATS_SCHEMA_VERSION: u64 = 1;

const ENGINE_UNAVAILABLE: &str =
    "engine-unavailable (a writer panicked mid-request; queries still serve the last snapshot)";

/// The state shared between the reactor thread and the worker pool.
pub(crate) struct Shared {
    /// The live engine behind its durability layer; ingests serialise here.
    pub(crate) engine: Mutex<DurableEngine>,
    /// The snapshot queries run against, republished after every ingest.
    /// Readers hold the lock only for the `Arc` clone.
    published: RwLock<InstanceSnapshot>,
    /// Worker threads for the sharded CQ kernel.
    threads: usize,
    /// Set by `SHUTDOWN` (or programmatically); the reactor observes it
    /// and drains.
    pub(crate) shutdown: AtomicBool,
    /// Latched when the engine mutex is found poisoned.
    degraded: AtomicBool,
    /// Extensional relations of the serving program, precomputed at start
    /// so `VALIDATE` never takes the engine lock.
    serving_edb: BTreeSet<Predicate>,
    /// Derived predicates of the serving program — fail-closed ingest
    /// rejects facts targeting these (rules own those relations).
    serving_idb: BTreeSet<Predicate>,
    /// The serving schema's arities, for `VALIDATE` arity checks.
    serving_arities: BTreeMap<Predicate, usize>,
    /// Candidate programs rejected by the admission gate.
    programs_rejected: AtomicU64,
    /// Total diagnostics emitted by `VALIDATE` requests.
    diagnostics_emitted: AtomicU64,
    /// The demand-driven (magic-sets) query path, sharing nothing with the
    /// live engine: it evaluates specialised programs against the published
    /// snapshot and caches one compiled program per binding-pattern
    /// signature.
    demand: DemandEngine,
    /// Per-verb latency histograms (p50/p95/p99), reported by `STATS` and
    /// exposed as a Prometheus histogram family by `METRICS`. Every served
    /// request bills exactly one verb, so at quiescence the per-verb
    /// counts sum to `transport.requests_served`.
    pub(crate) latency: VerbLatencies,
    /// Bounded ring of recent slow queries (`STATS SLOW=<n>`).
    pub(crate) slow_log: SlowQueryLog,
    /// Transport-layer accounting (accepts, rejects, sheds), reported by
    /// `STATS` and maintained by the reactor.
    pub(crate) transport: TransportCounters,
    /// Interrupts the reactor's `epoll_wait` — for completions and
    /// programmatic shutdown.
    waker: Arc<epoll::Waker>,
    pub(crate) config: ServerConfig,
}

impl Shared {
    /// Clones the published snapshot handle; a poisoned `published` lock is
    /// recovered with `into_inner` — the guarded value is a plain handle
    /// assignment, which cannot be left half-done.
    fn published_snapshot(&self) -> InstanceSnapshot {
        self.published
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

/// Renders a tripped query budget as its structured protocol error.
fn budget_error(exceeded: BudgetExceeded, budget: &QueryBudget) -> Response {
    match exceeded {
        BudgetExceeded::Deadline => Response::Error(format!(
            "deadline timeout_ms={}",
            budget.timeout.map_or(0, |t| t.as_millis() as u64)
        )),
        BudgetExceeded::RowLimit => Response::Error(format!(
            "row-limit max_rows={}",
            budget.max_rows.unwrap_or(0)
        )),
        BudgetExceeded::Cancelled => Response::Error("cancelled".into()),
    }
}

/// Records a slow query when the handler wall time crosses the configured
/// threshold (`None`: the log is disabled).
fn maybe_slow(
    shared: &Shared,
    wall_micros: u64,
    verb: &'static str,
    query: &ConjunctiveQuery,
    summary: String,
) {
    let Some(threshold) = shared.config.slow_query_micros else {
        return;
    };
    if wall_micros < threshold {
        return;
    }
    shared.slow_log.push(SlowQueryRecord {
        wall_micros,
        verb,
        query: query.to_string(),
        summary,
    });
}

/// Serves one request against the shared state. This is the whole protocol
/// semantics; the reactor transport around it only moves lines. Workers
/// call it off the job queue — it is deliberately transport-free.
pub(crate) fn handle_request(shared: &Shared, request: Request) -> Response {
    let mut span = vadalog_obs::span("service.request");
    if span.active() {
        span.kv("verb", Verb::of(&request).name());
    }
    match request {
        Request::Ingest { facts, .. } => {
            // Fail-closed admission: ingest may only feed extensional
            // relations — the engine itself would accept a fact over a
            // derived predicate and silently mix asserted and derived
            // tuples in a rule-owned relation.
            if shared.config.admission == AdmissionPolicy::FailClosed {
                if let Some(atom) = facts
                    .iter()
                    .find(|a| shared.serving_idb.contains(&a.predicate))
                {
                    shared.diagnostics_emitted.fetch_add(1, Ordering::SeqCst);
                    return Response::Error(format!(
                        "fact targets derived predicate `{}`: ingest may only feed extensional \
                         relations (VLG010)",
                        atom.predicate.name()
                    ));
                }
            }
            if let Err(error) = failpoints::check("server.lock") {
                return Response::Error(error.to_string());
            }
            let Ok(mut engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            match engine.ingest(&facts) {
                Ok(outcome) => {
                    // Publish while still holding the engine lock: were the
                    // engine released first, a concurrent ingest could
                    // publish a *newer* epoch in the gap and this store
                    // would regress the served snapshot to a stale one.
                    // Lock order is always engine → published, and queries
                    // take only `published`, so this cannot deadlock.
                    let snapshot = engine.engine().snapshot();
                    *shared
                        .published
                        .write()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = snapshot;
                    drop(engine);
                    Response::ingest(&outcome)
                }
                // A rejected batch left the instance untouched (the engine
                // validates before applying; a durability failure rolls the
                // log back before the engine is touched) — report and keep
                // serving.
                Err(error) => Response::Error(error.to_string()),
            }
        }
        Request::Query {
            query,
            timeout_ms,
            max_rows,
            mode,
        } => {
            let snapshot = shared.published_snapshot();
            let budget = QueryBudget {
                timeout: timeout_ms
                    .map(Duration::from_millis)
                    .or(shared.config.default_timeout),
                max_rows: max_rows.or(shared.config.default_max_rows),
            };
            let started = Instant::now();
            // No lock is held here: either path runs against the frozen
            // snapshot, concurrently with any in-flight ingest. MAGIC and
            // AUTO prefer the demand-driven path; a fallback (all-free
            // query, EDB-only query, name collision, …) silently takes the
            // full path, while a tripped budget is final — full evaluation
            // could only be slower.
            let mut magic: Option<(bool, u64)> = None;
            let demanded = match mode {
                QueryMode::Full => None,
                QueryMode::Magic | QueryMode::Auto => {
                    match shared.demand.answer(snapshot.instance(), &query, &budget) {
                        Ok(answer) => {
                            magic = Some((answer.cache_hit, answer.demanded_tuples));
                            Some(Ok(answer.answers))
                        }
                        Err(DemandError::Fallback(_)) => None,
                        Err(DemandError::Budget(exceeded)) => Some(Err(exceeded)),
                    }
                }
            };
            let answers = match demanded {
                Some(result) => result,
                None if budget.is_unlimited() => {
                    Ok(query.evaluate_with_threads(&snapshot, shared.threads))
                }
                None => query.evaluate_budgeted(&snapshot, shared.threads, &budget),
            };
            match answers {
                Ok(answers) => {
                    let summary = match magic {
                        Some((cache_hit, demanded_tuples)) => format!(
                            "path=magic cache={} demanded_tuples={demanded_tuples} answers={}",
                            if cache_hit { "hit" } else { "miss" },
                            answers.len()
                        ),
                        None => format!("path=full answers={}", answers.len()),
                    };
                    maybe_slow(
                        shared,
                        started.elapsed().as_micros() as u64,
                        "query",
                        &query,
                        summary,
                    );
                    Response::Answers {
                        epoch: snapshot.epoch(),
                        tuples: answers.into_iter().collect(),
                    }
                }
                Err(exceeded) => budget_error(exceeded, &budget),
            }
        }
        Request::Explain { query, mode } => {
            // Plan-only: nothing is evaluated and no lock is taken. The
            // demand cache is consulted (and warmed) so the decision line
            // can report hit/miss truthfully for the *next* query of this
            // binding pattern.
            let snapshot = shared.published_snapshot();
            let prefer_magic = !matches!(mode, QueryMode::Full);
            let cache_hit = if prefer_magic {
                shared.demand.specialised(&query).ok().map(|(_, hit)| hit)
            } else {
                None
            };
            let report = explain_query(
                shared.demand.program(),
                snapshot.instance(),
                &query,
                prefer_magic,
                cache_hit,
            );
            Response::Framed {
                label: "explain",
                info: format!("epoch={} magic={}", snapshot.epoch(), report.magic),
                lines: report.lines,
            }
        }
        Request::Profile {
            query,
            timeout_ms,
            max_rows,
            mode,
        } => {
            let snapshot = shared.published_snapshot();
            let budget = QueryBudget {
                timeout: timeout_ms
                    .map(Duration::from_millis)
                    .or(shared.config.default_timeout),
                max_rows: max_rows.or(shared.config.default_max_rows),
            };
            let started = Instant::now();
            // Same path selection as QUERY; the profiled demand answer is
            // bit-identical to the unprofiled one.
            let demanded = match mode {
                QueryMode::Full => None,
                QueryMode::Magic | QueryMode::Auto => {
                    match shared
                        .demand
                        .answer_profiled(snapshot.instance(), &query, &budget)
                    {
                        Ok(profiled) => Some(Ok(profiled)),
                        Err(DemandError::Fallback(_)) => None,
                        Err(DemandError::Budget(exceeded)) => Some(Err(exceeded)),
                    }
                }
            };
            match demanded {
                Some(Ok((answer, profile))) => {
                    let cache = if answer.cache_hit { "hit" } else { "miss" };
                    let mut lines = vec![
                        format!(
                            "phase=rewrite wall_micros={} cache={cache}",
                            profile.rewrite_micros
                        ),
                        format!(
                            "phase=seed wall_micros={} seed_facts={}",
                            profile.seed_micros, profile.seed_facts
                        ),
                    ];
                    for (stratum, rounds) in profile.strata.iter().enumerate() {
                        for round in rounds {
                            lines.push(format!(
                                "phase=stratum stratum={stratum} round={} wall_micros={} \
                                 delta_rows={} derived_rows={} join_probes={} rows_prededuped={}",
                                round.round,
                                round.wall_micros,
                                round.delta_rows,
                                round.derived_rows,
                                round.join_probes,
                                round.rows_prededuped
                            ));
                        }
                    }
                    lines.push(format!(
                        "phase=answer wall_micros={}",
                        profile.answer_micros
                    ));
                    let wall = started.elapsed().as_micros() as u64;
                    let stats = profile.stats;
                    lines.push(format!(
                        "totals wall_micros={wall} joins_evaluated={} join_probes={} \
                         composite_probes={} misses_filtered={} rows_prededuped={} \
                         demanded_tuples={} scratch_atoms={} answers={}",
                        stats.joins_evaluated,
                        stats.join_probes,
                        stats.composite_probes,
                        stats.probe_misses_filtered,
                        stats.rows_prededuped,
                        answer.demanded_tuples,
                        answer.scratch_atoms,
                        answer.answers.len()
                    ));
                    maybe_slow(
                        shared,
                        wall,
                        "profile",
                        &query,
                        format!(
                            "path=magic cache={cache} demanded_tuples={} answers={}",
                            answer.demanded_tuples,
                            answer.answers.len()
                        ),
                    );
                    Response::Framed {
                        label: "profile",
                        info: format!(
                            "answers={} epoch={} path=magic cache={cache}",
                            answer.answers.len(),
                            snapshot.epoch()
                        ),
                        lines,
                    }
                }
                Some(Err(exceeded)) => budget_error(exceeded, &budget),
                None => {
                    let eval_started = Instant::now();
                    let answers = if budget.is_unlimited() {
                        Ok(query.evaluate_with_threads(&snapshot, shared.threads))
                    } else {
                        query.evaluate_budgeted(&snapshot, shared.threads, &budget)
                    };
                    match answers {
                        Ok(answers) => {
                            let answer_micros = eval_started.elapsed().as_micros() as u64;
                            let wall = started.elapsed().as_micros() as u64;
                            let lines = vec![
                                format!("phase=answer wall_micros={answer_micros}"),
                                format!(
                                    "totals wall_micros={wall} materialised_atoms={} answers={}",
                                    snapshot.instance().len(),
                                    answers.len()
                                ),
                            ];
                            maybe_slow(
                                shared,
                                wall,
                                "profile",
                                &query,
                                format!("path=full answers={}", answers.len()),
                            );
                            Response::Framed {
                                label: "profile",
                                info: format!(
                                    "answers={} epoch={} path=full",
                                    answers.len(),
                                    snapshot.epoch()
                                ),
                                lines,
                            }
                        }
                        Err(exceeded) => budget_error(exceeded, &budget),
                    }
                }
            }
        }
        Request::Validate { source } => {
            // A dry run against the serving schema: no engine lock, no
            // state change beyond the counters.
            let options = AnalyzerOptions {
                require_datalog: true,
                known_edb: shared.serving_edb.clone(),
                known_arities: shared.serving_arities.clone(),
                query: None,
            };
            let (_, report) = analyze_source(&source, &options);
            shared
                .diagnostics_emitted
                .fetch_add(report.diagnostics.len() as u64, Ordering::SeqCst);
            let admissible =
                report.admissible() || shared.config.admission == AdmissionPolicy::WarnOnly;
            if !admissible {
                shared.programs_rejected.fetch_add(1, Ordering::SeqCst);
            }
            Response::Diagnostics {
                admissible,
                diagnostics: report.diagnostics,
            }
        }
        Request::Stats { slow: Some(n) } => Response::Framed {
            label: "slow",
            info: format!(
                "threshold_micros={}",
                shared
                    .config
                    .slow_query_micros
                    .map_or_else(|| "disabled".to_string(), |t| t.to_string())
            ),
            lines: shared.slow_log.recent(n),
        },
        Request::Stats { slow: None } => {
            let Ok(engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            let (wal_records, wal_bytes, snapshots_written, snapshot_failures) = engine.wal_stats();
            let inner = engine.engine();
            let stats = inner.stats();
            let demand = shared.demand.stats();
            Response::Ok(format!(
                "{{\"schema_version\":{STATS_SCHEMA_VERSION},\
                 \"epoch\":{},\"atoms\":{},\"derived_atoms\":{},\"iterations\":{},\
                 \"rounds_incremental\":{},\"strata_skipped\":{},\"joins_evaluated\":{},\
                 \"join_probes\":{},\"index_bytes\":{},\"wal_records\":{},\"wal_bytes\":{},\
                 \"snapshots_written\":{},\"snapshot_failures\":{},\"programs_rejected\":{},\
                 \"diagnostics_emitted\":{},\"magic_queries\":{},\"magic_cache_hits\":{},\
                 \"demanded_tuples\":{},\"full_materialised_tuples\":{},\"slow_queries\":{},\
                 \"transport\":{},\
                 \"latency\":{},\"degraded\":{}}}",
                inner.epoch(),
                inner.instance().len(),
                stats.derived_atoms,
                stats.iterations,
                stats.rounds_incremental,
                stats.strata_skipped,
                stats.joins_evaluated,
                stats.join_probes,
                inner.instance().index_bytes(),
                wal_records,
                wal_bytes,
                snapshots_written,
                snapshot_failures,
                shared.programs_rejected.load(Ordering::SeqCst),
                shared.diagnostics_emitted.load(Ordering::SeqCst),
                demand.magic_queries,
                demand.magic_cache_hits,
                demand.demanded_tuples,
                inner.instance().len(),
                shared.slow_log.len(),
                shared.transport.render(),
                shared.latency.render(),
                shared.degraded.load(Ordering::SeqCst),
            ))
        }
        Request::Metrics => {
            let Ok(engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            let (wal_records, wal_bytes, snapshots_written, snapshot_failures) = engine.wal_stats();
            let inner = engine.engine();
            let stats = *inner.stats();
            let epoch = inner.epoch();
            let atoms = inner.instance().len() as u64;
            let index_bytes = inner.instance().index_bytes() as u64;
            drop(engine);
            let demand = shared.demand.stats();
            let transport = &shared.transport;
            let mut lines = Vec::new();
            metrics::gauge(
                &mut lines,
                "vadalog_stats_schema_version",
                "Version of the STATS JSON schema this server speaks.",
                STATS_SCHEMA_VERSION,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_epoch",
                "Snapshot epoch of the served materialisation.",
                epoch,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_atoms",
                "Atoms (EDB + IDB) in the live materialisation.",
                atoms,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_index_bytes",
                "Bytes held by the live instance's join indexes.",
                index_bytes,
            );
            metrics::counter(
                &mut lines,
                "vadalog_iterations_total",
                "Semi-naive iterations summed over all strata.",
                stats.iterations as u64,
            );
            metrics::counter(
                &mut lines,
                "vadalog_joins_evaluated_total",
                "Join-kernel invocations.",
                stats.joins_evaluated as u64,
            );
            metrics::counter(
                &mut lines,
                "vadalog_join_probes_total",
                "Candidate rows examined across all join-kernel invocations.",
                stats.join_probes,
            );
            metrics::counter(
                &mut lines,
                "vadalog_composite_probes_total",
                "Probe steps answered by a composite fused-key index.",
                stats.composite_probes,
            );
            metrics::counter(
                &mut lines,
                "vadalog_probe_misses_filtered_total",
                "Index probes skipped by the fingerprint filter.",
                stats.probe_misses_filtered,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_wal_records",
                "Records in the write-ahead log since the last snapshot.",
                wal_records,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_wal_bytes",
                "Bytes in the write-ahead log since the last snapshot.",
                wal_bytes,
            );
            metrics::counter(
                &mut lines,
                "vadalog_snapshots_written_total",
                "Durable snapshots written.",
                snapshots_written,
            );
            metrics::counter(
                &mut lines,
                "vadalog_snapshot_failures_total",
                "Durable snapshot attempts that failed.",
                snapshot_failures,
            );
            metrics::counter(
                &mut lines,
                "vadalog_programs_rejected_total",
                "Candidate programs rejected by the admission gate.",
                shared.programs_rejected.load(Ordering::SeqCst),
            );
            metrics::counter(
                &mut lines,
                "vadalog_diagnostics_emitted_total",
                "Diagnostics emitted by VALIDATE requests.",
                shared.diagnostics_emitted.load(Ordering::SeqCst),
            );
            metrics::counter(
                &mut lines,
                "vadalog_magic_queries_total",
                "Queries answered through the demand-driven (magic) path.",
                demand.magic_queries,
            );
            metrics::counter(
                &mut lines,
                "vadalog_magic_cache_hits_total",
                "Magic queries whose specialised program was cached.",
                demand.magic_cache_hits,
            );
            metrics::counter(
                &mut lines,
                "vadalog_demanded_tuples_total",
                "Tuples derived across all demand-driven evaluations.",
                demand.demanded_tuples,
            );
            metrics::counter(
                &mut lines,
                "vadalog_connections_accepted_total",
                "Connections accepted by the reactor.",
                transport.connections_accepted.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_connections_rejected_total",
                "Connections rejected by admission control.",
                transport.connections_rejected.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_connections_closed_total",
                "Connections closed for any reason.",
                transport.connections_closed.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_requests_received_total",
                "Request lines received (including ones that failed to parse).",
                transport.requests_received.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_requests_served_total",
                "Requests answered by the handler.",
                transport.requests_served.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_requests_failed_total",
                "Requests that failed (parse errors, drops, drain rejects).",
                transport.requests_failed.load(Ordering::Relaxed),
            );
            metrics::counter(
                &mut lines,
                "vadalog_queries_shed_total",
                "Requests shed by queue-depth admission control.",
                transport.queries_shed.load(Ordering::Relaxed),
            );
            metrics::gauge(
                &mut lines,
                "vadalog_queue_depth_max",
                "High-water mark of the job queue depth.",
                transport.queue_depth_max.load(Ordering::Relaxed),
            );
            metrics::gauge(
                &mut lines,
                "vadalog_slow_queries",
                "Slow-query records currently retained in the bounded log.",
                shared.slow_log.len() as u64,
            );
            metrics::gauge(
                &mut lines,
                "vadalog_degraded",
                "1 when a writer panic has poisoned the engine mutex.",
                u64::from(shared.degraded.load(Ordering::SeqCst)),
            );
            metrics::latency_family(&mut lines, &shared.latency);
            Response::Framed {
                label: "metrics",
                info: String::new(),
                lines,
            }
        }
        Request::Snapshot => {
            let Ok(mut engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            match engine.snapshot_now() {
                Ok(()) => Response::Ok(format!("snapshot epoch={}", engine.engine().epoch())),
                Err(error) => Response::Error(error.to_string()),
            }
        }
        Request::Shutdown => {
            // Normally intercepted inline by the reactor (so it cannot be
            // starved by a saturated worker pool); kept here so the
            // handler's semantics stay complete on their own.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.waker.wake();
            Response::Ok("bye".into())
        }
    }
}

/// A running live-materialisation server: one reactor thread multiplexing
/// every connection over epoll, plus its worker pool, serving the shared
/// engine.
pub struct LiveServer {
    addr: SocketAddr,
    reactor: JoinHandle<()>,
    shared: Arc<Shared>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving the given engine **without durability** and with default
    /// limits. The engine may already hold a materialisation — its current
    /// state is published as the first snapshot.
    pub fn start(engine: IncrementalEngine, addr: impl ToSocketAddrs) -> io::Result<LiveServer> {
        LiveServer::start_with(
            DurableEngine::volatile(engine),
            addr,
            ServerConfig::default(),
        )
    }

    /// Binds `addr` and serves a (possibly durable, possibly recovered)
    /// engine under the given transport limits and budget defaults.
    pub fn start_with(
        engine: DurableEngine,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<LiveServer> {
        // Defensive gate: the serving program itself must pass validation.
        // `IncrementalEngine::new` already guarantees a Datalog program, so
        // this only fires for genuinely broken hand-built programs — but a
        // fail-closed server refuses to come up serving one.
        let program = engine.engine().program();
        let serving_edb = program.extensional_predicates();
        let serving_idb = program.intensional_predicates();
        let serving_arities: BTreeMap<Predicate, usize> = program
            .schema()
            .into_iter()
            .filter_map(|p| program.arity_of(p).map(|a| (p, a)))
            .collect();
        let report = vadalog_analysis::analyze(program);
        if report.has_errors() && config.admission == AdmissionPolicy::FailClosed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "serving program fails validation with {} error(s); first: {}",
                    report.count(vadalog_analysis::Severity::Error),
                    report
                        .diagnostics
                        .iter()
                        .find(|d| d.severity == vadalog_analysis::Severity::Error)
                        .map(|d| d.to_string())
                        .unwrap_or_default(),
                ),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = engine.engine().threads();
        let published = RwLock::new(engine.engine().snapshot());
        let demand = DemandEngine::new(program.clone()).with_threads(threads);
        let waker = Arc::new(epoll::Waker::new()?);
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            published,
            threads,
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            serving_edb,
            serving_idb,
            serving_arities,
            programs_rejected: AtomicU64::new(0),
            diagnostics_emitted: AtomicU64::new(0),
            demand,
            latency: VerbLatencies::default(),
            slow_log: SlowQueryLog::default(),
            transport: TransportCounters::default(),
            waker: Arc::clone(&waker),
            config,
        });
        let reactor = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || reactor::run(shared, listener, waker)
        });
        Ok(LiveServer {
            addr,
            reactor,
            shared,
        })
    }

    /// Recovers the state persisted in `config.dir` (snapshot + WAL tail
    /// replay, bit-identical to the uncrashed engine) into `engine` — a
    /// fresh engine over the same program — and starts serving it. Returns
    /// the running server and the [`RecoveryReport`](crate::durability::RecoveryReport)
    /// describing what was restored.
    pub fn recover(
        engine: IncrementalEngine,
        config: crate::durability::DurabilityConfig,
        addr: impl ToSocketAddrs,
        server_config: ServerConfig,
    ) -> Result<(LiveServer, crate::durability::RecoveryReport), crate::durability::ServiceError>
    {
        let (durable, report) = DurableEngine::recover(engine, config)?;
        let server = LiveServer::start_with(durable, addr, server_config)?;
        Ok((server, report))
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown programmatically — equivalent to a `SHUTDOWN`
    /// request: the listener closes, in-flight requests complete and
    /// flush, the WAL is flushed and the clean-shutdown marker appended.
    /// The eventfd waker interrupts the reactor's wait immediately.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Waits for the server to stop: the reactor drains every connection,
    /// joins its worker pool, and closes the WAL cleanly.
    pub fn join(self) {
        let _ = self.reactor.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;
    use vadalog_model::parser::parse_rules;

    const TWO_CLOSURES: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                                s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).";

    fn start(engine: IncrementalEngine) -> LiveServer {
        LiveServer::start(engine, "127.0.0.1:0").expect("bind loopback")
    }

    /// A minimal blocking protocol client for the tests.
    pub(crate) struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        pub(crate) fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect to live server");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            Client {
                reader,
                writer: BufWriter::new(stream),
            }
        }

        /// Sends one request line and reads the full response: one line, or
        /// — for count-framed responses — the header plus exactly as many
        /// body lines as the header's count announces plus the `END` line
        /// (framing by count, as the protocol requires). The counted
        /// headers are whitelisted: single-line acks like `OK inserted=3`
        /// must not be mistaken for frames.
        pub(crate) fn send(&mut self, line: &str) -> Vec<String> {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("write request");
            self.writer.flush().expect("flush request");
            let mut lines = vec![self.read_line()];
            let counted = [
                "answers",
                "diagnostics",
                "explain",
                "profile",
                "metrics",
                "slow",
            ]
            .iter()
            .find_map(|label| lines[0].strip_prefix(&format!("OK {label}=")));
            if let Some(rest) = counted {
                let count: usize = rest
                    .split_whitespace()
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("body-line count in header");
                for _ in 0..count {
                    let body = self.read_line();
                    lines.push(body);
                }
                let end = self.read_line();
                assert_eq!(end, "END", "counted responses must terminate with END");
                lines.push(end);
            }
            lines
        }

        fn read_line(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            line.trim_end_matches('\n').to_string()
        }
    }

    fn engine() -> IncrementalEngine {
        IncrementalEngine::new(parse_rules(TWO_CLOSURES).unwrap()).unwrap()
    }

    #[test]
    fn full_protocol_round_trip_over_loopback() {
        let server = start(engine());
        let addr = server.addr();
        let mut client = Client::connect(addr);

        let batch = client.send("BATCH edge(a, b). edge(b, c). link(p, q).");
        // t-stratum: seed + 2 semi-naive rounds; s-stratum: seed + 1.
        assert_eq!(
            batch,
            vec!["OK inserted=3 duplicate=0 derived=4 strata_skipped=0 rounds=5 epoch=1"]
        );
        let fact = client.send("FACT edge(c, d).");
        assert!(fact[0].starts_with("OK inserted=1 "), "{fact:?}");
        assert!(
            fact[0].contains("strata_skipped=1"),
            "link stratum untouched: {fact:?}"
        );

        let answers = client.send("QUERY ?(X) :- t(X, d).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "a", "b", "c", "END"]);
        let pairs = client.send("QUERY ?(X, Y) :- s(X, Y).");
        assert_eq!(pairs, vec!["OK answers=1 epoch=2", "p q", "END"]);

        let stats = client.send("STATS");
        assert!(
            stats[0].starts_with("OK {\"schema_version\":1,\"epoch\":2,"),
            "{stats:?}"
        );
        assert!(stats[0].contains("\"rounds_incremental\""), "{stats:?}");
        assert!(
            stats[0].contains("\"wal_records\":0"),
            "volatile server: {stats:?}"
        );
        assert!(stats[0].contains("\"degraded\":false"), "{stats:?}");

        // Unknown and malformed requests keep the connection alive.
        assert!(client.send("NOPE")[0].starts_with("ERR unknown command"));
        assert!(client.send("QUERY ?(X) :- ")[0].starts_with("ERR "));
        assert!(client.send("FACT edge(a b).")[0].starts_with("ERR "));
        let still = client.send("QUERY ? :- t(a, d).");
        assert_eq!(still, vec!["OK answers=1 epoch=2", "", "END"]);

        // A constant that renders exactly as the terminator keyword: the
        // count-based framing keeps the answer distinguishable from `END`.
        client.send("FACT edge(\"END\", zz).");
        let tricky = client.send("QUERY ?(X) :- edge(X, zz).");
        assert_eq!(tricky, vec!["OK answers=1 epoch=3", "END", "END"]);

        assert_eq!(client.send("SHUTDOWN"), vec!["OK bye"]);
        drop(client);
        server.join();
    }

    #[test]
    fn rejected_batches_leave_the_service_fully_usable() {
        let server = start(engine().with_row_capacity(3));
        let mut client = Client::connect(server.addr());

        client.send("BATCH edge(a, b). edge(b, c).");
        // 2 existing + 2 incoming > 3: rejected as a protocol error, not a
        // dead server — and not a half-applied batch.
        let err = client.send("BATCH edge(c, d). edge(d, e).");
        assert!(err[0].starts_with("ERR relation `edge` is full"), "{err:?}");
        let answers = client.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(answers[0], "OK answers=3 epoch=1", "{answers:?}");

        // The service keeps ingesting up to the budget.
        let ok = client.send("FACT edge(c, d).");
        assert!(ok[0].starts_with("OK inserted=1 "), "{ok:?}");
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "b", "c", "d", "END"]);

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn queries_are_served_from_epoch_snapshots_across_connections() {
        let server = start(engine());
        let addr = server.addr();
        let mut writer_conn = Client::connect(addr);
        let mut reader_conn = Client::connect(addr);

        writer_conn.send("FACT edge(a, b).");
        let before = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(before[0], "OK answers=1 epoch=1");

        // A second connection's ingest is visible to the first reader's
        // next query, with a bumped epoch.
        writer_conn.send("FACT edge(b, c).");
        let after = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(after[0], "OK answers=3 epoch=2");

        // Concurrent readers all see a consistent snapshot.
        let handles: Vec<std::thread::JoinHandle<String>> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    c.send("QUERY ?(X, Y) :- t(X, Y).")[0].clone()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "OK answers=3 epoch=2");
        }

        reader_conn.send("SHUTDOWN");
        drop(reader_conn);
        drop(writer_conn);
        server.join();
    }

    #[test]
    fn query_budgets_answer_structured_errors_and_keep_serving() {
        let server = start(engine());
        let addr = server.addr();
        let mut client = Client::connect(addr);
        client.send("BATCH edge(a, b). edge(b, c). edge(c, d).");

        // A zero deadline always trips; the error names the limit.
        let timed_out = client.send("QUERY TIMEOUT_MS=0 ?(X, Y) :- t(X, Y).");
        assert_eq!(timed_out, vec!["ERR deadline timeout_ms=0"]);
        // A row cap below the answer count trips.
        let capped = client.send("QUERY MAX_ROWS=2 ?(X, Y) :- t(X, Y).");
        assert_eq!(capped, vec!["ERR row-limit max_rows=2"]);

        // The connection and the engine remain fully usable afterwards.
        let ok = client.send("QUERY MAX_ROWS=100 ?(X, Y) :- t(X, Y).");
        assert_eq!(ok[0], "OK answers=6 epoch=1");
        let unlimited = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(
            unlimited,
            vec!["OK answers=3 epoch=1", "b", "c", "d", "END"]
        );
        let ingest = client.send("FACT edge(d, e).");
        assert!(ingest[0].starts_with("OK inserted=1 "), "{ingest:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn magic_queries_hit_the_specialised_program_cache() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c). edge(c, d). link(p, q).");

        // A bound query through the demand path answers exactly what the
        // full path answers.
        let full = client.send("QUERY MODE=FULL ?(X) :- t(a, X).");
        let magic = client.send("QUERY MODE=MAGIC ?(X) :- t(a, X).");
        assert_eq!(full, vec!["OK answers=3 epoch=1", "b", "c", "d", "END"]);
        assert_eq!(magic, full);

        // The second same-pattern query (different constant) skips the
        // rewrite + compile: one cache hit, two magic queries.
        let again = client.send("QUERY MODE=MAGIC ?(X) :- t(b, X).");
        assert_eq!(again, vec!["OK answers=2 epoch=1", "c", "d", "END"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"magic_queries\":2"), "{stats:?}");
        assert!(stats[0].contains("\"magic_cache_hits\":1"), "{stats:?}");
        assert!(
            !stats[0].contains("\"demanded_tuples\":0,"),
            "the magic path derived something: {stats:?}"
        );
        assert!(
            stats[0].contains("\"full_materialised_tuples\":"),
            "{stats:?}"
        );

        // AUTO takes the magic path for bound queries too…
        let auto = client.send("QUERY ?(X) :- t(c, X).");
        assert_eq!(auto, vec!["OK answers=1 epoch=1", "d", "END"]);
        // …and falls back to full evaluation when the query is all-free,
        // without disturbing the magic counters.
        let free = client.send("QUERY ?(X, Y) :- s(X, Y).");
        assert_eq!(free, vec!["OK answers=1 epoch=1", "p q", "END"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"magic_queries\":3"), "{stats:?}");
        assert!(stats[0].contains("\"magic_cache_hits\":2"), "{stats:?}");

        // Per-verb latency accounting saw every QUERY, the FACT-free
        // session and exactly one BATCH.
        assert!(
            stats[0].contains("\"latency\":{\"query\":{\"count\":5,"),
            "{stats:?}"
        );
        assert!(stats[0].contains("\"fact\":{\"count\":0,"), "{stats:?}");
        assert!(stats[0].contains("\"batch\":{\"count\":1,"), "{stats:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn durable_server_recovers_its_materialisation_after_restart() {
        let dir =
            std::env::temp_dir().join(format!("vadalog-server-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = crate::durability::DurabilityConfig::new(&dir);
        let durable = DurableEngine::create(engine(), config.clone()).unwrap();
        let server =
            LiveServer::start_with(durable, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"wal_records\":1"), "{stats:?}");
        client.send("SHUTDOWN");
        drop(client);
        server.join();

        // "Restart": a fresh engine over the same program recovers the
        // materialisation from disk instead of re-deriving from scratch.
        let (server, report) =
            LiveServer::recover(engine(), config, "127.0.0.1:0", ServerConfig::default()).unwrap();
        assert!(
            report.clean_shutdown,
            "the shutdown above flushed and marked the WAL"
        );
        let mut client = Client::connect(server.addr());
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=2 epoch=1", "b", "c", "END"]);
        // The SNAPSHOT verb persists on demand and truncates the log.
        assert_eq!(client.send("SNAPSHOT"), vec!["OK snapshot epoch=1"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"snapshots_written\":1"), "{stats:?}");
        client.send("SHUTDOWN");
        drop(client);
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_gate_rejects_bad_programs_and_keeps_serving() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");

        // A candidate writing into the serving EDB: rejected (VLG010) and
        // the rejection is visible in STATS — but nothing about the live
        // engine changed.
        let verdict = client.send("VALIDATE edge(Y, X) :- edge(X, Y).");
        assert!(verdict[0].starts_with("OK diagnostics="), "{verdict:?}");
        assert!(verdict[0].ends_with("admissible=false"), "{verdict:?}");
        assert!(
            verdict.iter().any(|l| l.starts_with("VLG010 error")),
            "EDB collision named: {verdict:?}"
        );
        assert_eq!(*verdict.last().unwrap(), "END");
        // Every reported line round-trips through the protocol parser.
        for line in &verdict[1..verdict.len() - 1] {
            let parsed = crate::protocol::parse_diagnostic_line(line).unwrap();
            assert_eq!(parsed.to_string(), *line);
        }

        // A clean candidate over the serving schema is admissible.
        let clean = client.send("VALIDATE reach(X, Y) :- edge(X, Y).");
        assert!(clean[0].ends_with("admissible=true"), "{clean:?}");

        // An arity conflict with the serving schema is an error.
        let arity = client.send("VALIDATE out(X) :- edge(X).");
        assert!(arity[0].ends_with("admissible=false"), "{arity:?}");
        assert!(
            arity.iter().any(|l| l.starts_with("VLG001 error")),
            "{arity:?}"
        );

        // The rejected programs left the engine fully serviceable.
        let ok = client.send("FACT edge(c, d).");
        assert!(ok[0].starts_with("OK inserted=1 "), "{ok:?}");
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "b", "c", "d", "END"]);

        // STATS counts both rejections and every diagnostic emitted.
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"programs_rejected\":2"), "{stats:?}");
        assert!(stats[0].contains("\"diagnostics_emitted\":"), "{stats:?}");
        assert!(
            !stats[0].contains("\"diagnostics_emitted\":0,"),
            "{stats:?}"
        );

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn fail_closed_ingest_refuses_facts_over_derived_predicates() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("FACT edge(a, b).");

        // t is rule-owned: asserting into it would mix asserted and
        // derived tuples, so the fail-closed default refuses.
        let refused = client.send("FACT t(a, z).");
        assert!(
            refused[0].starts_with("ERR fact targets derived predicate `t`"),
            "{refused:?}"
        );
        let answers = client.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(
            answers[0], "OK answers=1 epoch=1",
            "the ingest never happened: {answers:?}"
        );

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn warn_only_admission_admits_everything_but_still_counts() {
        let config = ServerConfig {
            admission: AdmissionPolicy::WarnOnly,
            ..ServerConfig::default()
        };
        let server =
            LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
                .unwrap();
        let mut client = Client::connect(server.addr());

        // The same EDB-collision candidate is admitted under WarnOnly…
        let verdict = client.send("VALIDATE edge(Y, X) :- edge(X, Y).");
        assert!(verdict[0].ends_with("admissible=true"), "{verdict:?}");
        // …and legacy ingest behaviour (facts into derived relations) is
        // preserved.
        client.send("FACT edge(a, b).");
        let asserted = client.send("FACT t(q, r).");
        assert!(asserted[0].starts_with("OK inserted=1 "), "{asserted:?}");

        let stats = client.send("STATS");
        assert!(stats[0].contains("\"programs_rejected\":0"), "{stats:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    /// Checks a METRICS payload against the Prometheus text exposition
    /// format: comments are `# HELP` / `# TYPE`, samples are
    /// `name[{labels}] value`, histogram buckets are cumulative and end at
    /// `+Inf` with the series count.
    fn validate_exposition(lines: &[String]) {
        let mut typed: BTreeMap<String, String> = BTreeMap::new();
        let mut bucket_last: BTreeMap<String, u64> = BTreeMap::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let keyword = parts.next().unwrap_or_default();
                let name = parts.next().unwrap_or_default();
                let trailer = parts.next().unwrap_or_default();
                assert!(
                    keyword == "HELP" || keyword == "TYPE",
                    "unknown comment keyword: {line}"
                );
                assert!(
                    !name.is_empty() && !trailer.is_empty(),
                    "bare comment: {line}"
                );
                if keyword == "TYPE" {
                    assert!(
                        trailer == "counter" || trailer == "gauge" || trailer == "histogram",
                        "unknown type: {line}"
                    );
                    typed.insert(name.to_string(), trailer.to_string());
                }
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {line}"
            );
            let value: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bad value: {line}"));
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(
                typed.contains_key(family),
                "sample without a TYPE comment: {line}"
            );
            if name.ends_with("_bucket") {
                // Cumulative within one labelled series: monotone counts.
                let key = series.split(",le=").next().unwrap().to_string();
                let last = bucket_last.entry(key).or_insert(0);
                assert!(value >= *last, "bucket counts regressed: {line}");
                *last = value;
                assert!(series.contains("le=\""), "bucket without le: {line}");
            }
        }
        // Every histogram's +Inf bucket equals its _count sample.
        for line in lines {
            if let Some((series, value)) = line.rsplit_once(' ') {
                if series.contains("le=\"+Inf\"") {
                    let count_series = series
                        .replace("_bucket", "_count")
                        .split(",le=")
                        .next()
                        .unwrap()
                        .to_string()
                        + "}";
                    let count_line = lines
                        .iter()
                        .find(|l| l.starts_with(&format!("{count_series} ")))
                        .unwrap_or_else(|| panic!("no _count for {series}"));
                    assert_eq!(count_line.rsplit_once(' ').unwrap().1, value, "{series}");
                }
            }
        }
    }

    #[test]
    fn explain_profile_and_metrics_round_trip_over_loopback() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c). edge(c, d). link(p, q).");

        // EXPLAIN returns the plan without evaluating: the adornment, the
        // magic decision, the rewrite and the join plan with estimates.
        let explain = client.send("EXPLAIN ?(X) :- t(a, X).");
        assert!(
            explain[0].starts_with("OK explain=") && explain[0].ends_with("epoch=1 magic=true"),
            "{explain:?}"
        );
        assert!(explain.iter().any(|l| l == "adornment t^bf"), "{explain:?}");
        assert!(
            explain
                .iter()
                .any(|l| l.starts_with("decision magic seeds=1 cache=miss")),
            "{explain:?}"
        );
        assert!(
            explain.iter().any(|l| l.starts_with("rewrite ")),
            "{explain:?}"
        );
        assert!(
            explain
                .iter()
                .any(|l| l.starts_with("plan step=0 atom=t/2 ") && l.contains(" est=")),
            "{explain:?}"
        );
        // Nothing ran: no magic query was answered yet.
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"magic_queries\":0"), "{stats:?}");

        // The EXPLAIN warmed the specialised-program cache.
        let again = client.send("EXPLAIN ?(X) :- t(b, X).");
        assert!(
            again
                .iter()
                .any(|l| l.starts_with("decision magic seeds=1 cache=hit")),
            "{again:?}"
        );
        let full = client.send("EXPLAIN MODE=FULL ?(X) :- t(a, X).");
        assert!(full[0].ends_with("magic=false"), "{full:?}");
        assert!(
            full.iter()
                .any(|l| l == "decision full reason=mode=full requested"),
            "{full:?}"
        );
        // EXPLAIN never evaluates, so evaluation budgets are rejected.
        let bad = client.send("EXPLAIN TIMEOUT_MS=5 ?(X) :- t(a, X).");
        assert!(
            bad[0].starts_with("ERR EXPLAIN does not evaluate"),
            "{bad:?}"
        );

        // PROFILE evaluates and returns the per-phase breakdown instead of
        // the tuples; the answer count matches what QUERY returns.
        let profile = client.send("PROFILE ?(X) :- t(a, X).");
        assert!(
            profile[0].starts_with("OK profile=")
                && profile[0].contains("answers=3 epoch=1 path=magic cache=hit"),
            "{profile:?}"
        );
        assert!(
            profile.iter().any(|l| l.starts_with("phase=rewrite ")),
            "{profile:?}"
        );
        assert!(
            profile
                .iter()
                .any(|l| l.starts_with("phase=seed ") && l.contains("seed_facts=1")),
            "{profile:?}"
        );
        assert!(
            profile.iter().any(|l| l.starts_with("phase=stratum ")),
            "{profile:?}"
        );
        let totals = profile
            .iter()
            .find(|l| l.starts_with("totals "))
            .expect("totals line");
        assert!(
            totals.contains("answers=3") && totals.contains("joins_evaluated="),
            "{totals}"
        );
        // Per-round derived rows sum to the demanded total.
        let derived_sum: u64 = profile
            .iter()
            .filter(|l| l.starts_with("phase=stratum "))
            .map(|l| field(l, "derived_rows"))
            .sum();
        assert_eq!(derived_sum, field(totals, "demanded_tuples"), "{profile:?}");

        // An all-free query takes the timed full path.
        let full_profile = client.send("PROFILE ?(X, Y) :- s(X, Y).");
        assert!(full_profile[0].contains("path=full"), "{full_profile:?}");
        assert!(
            full_profile
                .iter()
                .any(|l| l.starts_with("totals ") && l.contains("answers=1")),
            "{full_profile:?}"
        );
        // Budgets behave exactly like QUERY's.
        let timed_out = client.send("PROFILE TIMEOUT_MS=0 ?(X) :- t(a, X).");
        assert_eq!(timed_out, vec!["ERR deadline timeout_ms=0"]);

        // METRICS emits valid Prometheus text exposition.
        let metrics = client.send("METRICS");
        assert!(metrics[0].starts_with("OK metrics="), "{metrics:?}");
        let body = &metrics[1..metrics.len() - 1];
        validate_exposition(body);
        assert!(body.iter().any(|l| l == "vadalog_epoch 1"), "{metrics:?}");
        assert!(
            body.iter()
                .any(|l| l.starts_with("vadalog_request_duration_micros_count{verb=\"query\"}")),
            "{metrics:?}"
        );

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    /// Extracts `key=<number>` from a rendered profile line.
    fn field(line: &str, key: &str) -> u64 {
        line.split_whitespace()
            .find_map(|token| token.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("no {key} in {line}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn slow_queries_land_in_the_bounded_log() {
        let config = ServerConfig {
            slow_query_micros: Some(0), // every query is "slow"
            ..ServerConfig::default()
        };
        let server =
            LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
                .unwrap();
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");

        client.send("QUERY ?(X) :- t(a, X).");
        client.send("PROFILE ?(X) :- t(b, X).");
        let slow = client.send("STATS SLOW=10");
        assert!(
            slow[0].starts_with("OK slow=2 threshold_micros=0"),
            "{slow:?}"
        );
        // Newest first; each record carries the verb, a profile summary
        // and the query text.
        assert!(
            slow[1].contains("verb=profile")
                && slow[1].contains("path=magic")
                && slow[1].ends_with("query=Q(X) :- t(b, X)."),
            "{slow:?}"
        );
        assert!(
            slow[2].contains("verb=query") && slow[2].contains("answers=2"),
            "{slow:?}"
        );
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"slow_queries\":2"), "{stats:?}");
        let bad = client.send("STATS SLOW=abc");
        assert!(bad[0].starts_with("ERR bad SLOW value"), "{bad:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn per_verb_latency_counts_balance_the_transport_ledger() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");
        client.send("FACT edge(c, d).");
        client.send("QUERY ?(X) :- t(a, X).");
        client.send("QUERY MODE=FULL ?(X, Y) :- t(X, Y).");
        client.send("EXPLAIN ?(X) :- t(a, X).");
        client.send("PROFILE ?(X) :- t(a, X).");
        client.send("VALIDATE reach(X, Y) :- edge(X, Y).");
        client.send("STATS");
        client.send("METRICS");
        client.send("SNAPSHOT");
        client.send("STATS SLOW=5");
        assert!(client.send("NOPE")[0].starts_with("ERR "), "parse failure");
        client.send("SHUTDOWN");
        drop(client);
        let shared = Arc::clone(&server.shared);
        server.join();

        // At quiescence the books balance: every received request was
        // served, shed, or failed — and every served request billed
        // exactly one verb histogram.
        let transport = &shared.transport;
        let received = transport.requests_received.load(Ordering::Relaxed);
        let served = transport.requests_served.load(Ordering::Relaxed);
        let failed = transport.requests_failed.load(Ordering::Relaxed);
        let shed = transport.queries_shed.load(Ordering::Relaxed);
        assert_eq!(received, 13);
        assert_eq!(received, served + shed + failed);
        assert_eq!(shared.latency.total_count(), served);
        for (verb, expected) in [
            (Verb::Query, 2),
            (Verb::Fact, 1),
            (Verb::Batch, 1),
            (Verb::Explain, 1),
            (Verb::Profile, 1),
            (Verb::Validate, 1),
            (Verb::Stats, 2),
            (Verb::Metrics, 1),
            (Verb::Snapshot, 1),
            (Verb::Shutdown, 1),
        ] {
            assert_eq!(
                shared.latency.get(verb).count(),
                expected,
                "verb {}",
                verb.name()
            );
        }
    }

    #[test]
    fn programmatic_shutdown_needs_no_connection() {
        let server = start(engine());
        server.request_shutdown();
        // Joins promptly: the accept loop polls the flag, no self-connect
        // wake is involved.
        server.join();
    }
}
