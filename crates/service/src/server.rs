//! The TCP front door: protocol semantics ([`handle_request`]) plus the
//! server lifecycle around the readiness-based transport in
//! [`reactor`](crate::reactor) (see the [crate docs](crate) for the
//! protocol, the concurrency model and the durability model).
//!
//! # Robustness
//!
//! The transport defends itself against slow, broken, and *too many*
//! clients:
//!
//! * One epoll reactor thread multiplexes every connection; a fixed worker
//!   pool evaluates requests. A slow query occupies a worker, never the
//!   event loop — accepts, reads, timeouts and `SHUTDOWN` stay responsive
//!   under load.
//! * Admission control degrades gracefully instead of collapsing: accepts
//!   beyond [`ServerConfig::max_connections`] and requests beyond
//!   [`ServerConfig::max_queue_depth`] answer a structured
//!   `ERR overloaded retry_ms=<hint>` (`STATS` and `SHUTDOWN` are exempt,
//!   so an operator can always diagnose and end an overload).
//! * A line must fit in [`ServerConfig::max_line_bytes`] and complete
//!   within [`ServerConfig::line_timeout`] of its first byte — the
//!   slow-loris hole (one byte per minute, forever) closes a connection.
//!   The same deadline cuts off clients that stop reading their answers,
//!   and [`ServerConfig::idle_timeout`] optionally reaps silent sockets.
//! * A panicked writer poisons the engine mutex; subsequent writes answer
//!   `ERR engine-unavailable` while queries keep serving from the last
//!   published snapshot (reads never need the engine lock). The process
//!   can be restarted to recover the WAL — mid-ingest state is never
//!   trusted.
//! * Shutdown drains: the listener closes, queued-but-unstarted requests
//!   answer `ERR shutting-down`, in-flight requests complete and flush,
//!   then the WAL gets its clean-shutdown marker. An eventfd waker makes
//!   programmatic shutdown prompt — no self-connect hack.

use crate::durability::DurableEngine;
use crate::failpoints;
use crate::histogram::LatencyHistogram;
use crate::protocol::{QueryMode, Request, Response};
use crate::reactor::{self, TransportCounters};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;
use vadalog_analysis::{analyze_source, AnalyzerOptions};
use vadalog_datalog::{DemandEngine, DemandError, IncrementalEngine};
use vadalog_model::{BudgetExceeded, InstanceSnapshot, Predicate, QueryBudget};

/// What the server does with programs and facts that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Error-severity diagnostics reject (`VALIDATE` answers
    /// `admissible=false`, facts targeting derived predicates answer
    /// `ERR`); warnings are counted but admitted. The default.
    #[default]
    FailClosed,
    /// Everything is admitted; diagnostics are still emitted and counted.
    WarnOnly,
}

/// Transport limits and query-budget defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default wall-clock budget for queries that do not pass
    /// `TIMEOUT_MS` (`None`: unlimited).
    pub default_timeout: Option<Duration>,
    /// Default answer-count cap for queries that do not pass `MAX_ROWS`
    /// (`None`: unlimited).
    pub default_max_rows: Option<usize>,
    /// Hard cap on one request line; longer lines answer `ERR` and close.
    pub max_line_bytes: usize,
    /// A started line must complete within this long of its first byte;
    /// the same deadline bounds how long a written-but-unread reply may
    /// stall before its connection is cut.
    pub line_timeout: Duration,
    /// The reactor's tick: epoll wait timeout and timer-wheel granularity
    /// — also how quickly the transport observes a shutdown request.
    pub poll_interval: Duration,
    /// What happens to candidate programs with error-severity diagnostics
    /// and to facts targeting derived predicates.
    pub admission: AdmissionPolicy,
    /// Concurrent-connection cap: accepts beyond it answer
    /// `ERR overloaded retry_ms=<hint>` and close immediately.
    pub max_connections: usize,
    /// Pending job-queue depth cap: requests arriving while this many are
    /// queued (excluding in-flight) are shed with the same structured
    /// overload error; the connection survives. `STATS` and `SHUTDOWN`
    /// are exempt.
    pub max_queue_depth: usize,
    /// Worker-pool size — the in-flight request cap. `0` picks
    /// `max(2, available parallelism)`.
    pub worker_threads: usize,
    /// The `retry_ms` hint carried by `ERR overloaded` responses.
    pub overload_retry_ms: u64,
    /// Reap connections with no traffic in this long (`None`: idle
    /// sockets live until shutdown — they cost a buffer, not a thread).
    pub idle_timeout: Option<Duration>,
    /// Clamp each accepted socket's kernel send buffer (`SO_SNDBUF`) to
    /// roughly this many bytes (`None`: kernel autotuning). Bounding the
    /// kernel's absorption makes the stalled-reader cutoff deterministic:
    /// a peer that stops reading backs up into the reactor's user-space
    /// write buffer quickly, where the write-stall deadline can see it.
    pub send_buffer_bytes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            default_timeout: None,
            default_max_rows: None,
            max_line_bytes: 1 << 20,
            line_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            admission: AdmissionPolicy::FailClosed,
            max_connections: 1024,
            max_queue_depth: 128,
            worker_threads: 0,
            overload_retry_ms: 100,
            idle_timeout: None,
            send_buffer_bytes: None,
        }
    }
}

const ENGINE_UNAVAILABLE: &str =
    "engine-unavailable (a writer panicked mid-request; queries still serve the last snapshot)";

/// The state shared between the reactor thread and the worker pool.
pub(crate) struct Shared {
    /// The live engine behind its durability layer; ingests serialise here.
    pub(crate) engine: Mutex<DurableEngine>,
    /// The snapshot queries run against, republished after every ingest.
    /// Readers hold the lock only for the `Arc` clone.
    published: RwLock<InstanceSnapshot>,
    /// Worker threads for the sharded CQ kernel.
    threads: usize,
    /// Set by `SHUTDOWN` (or programmatically); the reactor observes it
    /// and drains.
    pub(crate) shutdown: AtomicBool,
    /// Latched when the engine mutex is found poisoned.
    degraded: AtomicBool,
    /// Extensional relations of the serving program, precomputed at start
    /// so `VALIDATE` never takes the engine lock.
    serving_edb: BTreeSet<Predicate>,
    /// Derived predicates of the serving program — fail-closed ingest
    /// rejects facts targeting these (rules own those relations).
    serving_idb: BTreeSet<Predicate>,
    /// The serving schema's arities, for `VALIDATE` arity checks.
    serving_arities: BTreeMap<Predicate, usize>,
    /// Candidate programs rejected by the admission gate.
    programs_rejected: AtomicU64,
    /// Total diagnostics emitted by `VALIDATE` requests.
    diagnostics_emitted: AtomicU64,
    /// The demand-driven (magic-sets) query path, sharing nothing with the
    /// live engine: it evaluates specialised programs against the published
    /// snapshot and caches one compiled program per binding-pattern
    /// signature.
    demand: DemandEngine,
    /// Per-verb latency histograms (p50/p95/p99), reported by `STATS`.
    pub(crate) latency_query: LatencyHistogram,
    pub(crate) latency_fact: LatencyHistogram,
    pub(crate) latency_batch: LatencyHistogram,
    /// Transport-layer accounting (accepts, rejects, sheds), reported by
    /// `STATS` and maintained by the reactor.
    pub(crate) transport: TransportCounters,
    /// Interrupts the reactor's `epoll_wait` — for completions and
    /// programmatic shutdown.
    waker: Arc<epoll::Waker>,
    pub(crate) config: ServerConfig,
}

impl Shared {
    /// Clones the published snapshot handle; a poisoned `published` lock is
    /// recovered with `into_inner` — the guarded value is a plain handle
    /// assignment, which cannot be left half-done.
    fn published_snapshot(&self) -> InstanceSnapshot {
        self.published
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

/// Serves one request against the shared state. This is the whole protocol
/// semantics; the reactor transport around it only moves lines. Workers
/// call it off the job queue — it is deliberately transport-free.
pub(crate) fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ingest { facts, .. } => {
            // Fail-closed admission: ingest may only feed extensional
            // relations — the engine itself would accept a fact over a
            // derived predicate and silently mix asserted and derived
            // tuples in a rule-owned relation.
            if shared.config.admission == AdmissionPolicy::FailClosed {
                if let Some(atom) = facts
                    .iter()
                    .find(|a| shared.serving_idb.contains(&a.predicate))
                {
                    shared.diagnostics_emitted.fetch_add(1, Ordering::SeqCst);
                    return Response::Error(format!(
                        "fact targets derived predicate `{}`: ingest may only feed extensional \
                         relations (VLG010)",
                        atom.predicate.name()
                    ));
                }
            }
            if let Err(error) = failpoints::check("server.lock") {
                return Response::Error(error.to_string());
            }
            let Ok(mut engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            match engine.ingest(&facts) {
                Ok(outcome) => {
                    // Publish while still holding the engine lock: were the
                    // engine released first, a concurrent ingest could
                    // publish a *newer* epoch in the gap and this store
                    // would regress the served snapshot to a stale one.
                    // Lock order is always engine → published, and queries
                    // take only `published`, so this cannot deadlock.
                    let snapshot = engine.engine().snapshot();
                    *shared
                        .published
                        .write()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = snapshot;
                    drop(engine);
                    Response::ingest(&outcome)
                }
                // A rejected batch left the instance untouched (the engine
                // validates before applying; a durability failure rolls the
                // log back before the engine is touched) — report and keep
                // serving.
                Err(error) => Response::Error(error.to_string()),
            }
        }
        Request::Query {
            query,
            timeout_ms,
            max_rows,
            mode,
        } => {
            let snapshot = shared.published_snapshot();
            let budget = QueryBudget {
                timeout: timeout_ms
                    .map(Duration::from_millis)
                    .or(shared.config.default_timeout),
                max_rows: max_rows.or(shared.config.default_max_rows),
            };
            // No lock is held here: either path runs against the frozen
            // snapshot, concurrently with any in-flight ingest. MAGIC and
            // AUTO prefer the demand-driven path; a fallback (all-free
            // query, EDB-only query, name collision, …) silently takes the
            // full path, while a tripped budget is final — full evaluation
            // could only be slower.
            let demanded = match mode {
                QueryMode::Full => None,
                QueryMode::Magic | QueryMode::Auto => {
                    match shared.demand.answer(snapshot.instance(), &query, &budget) {
                        Ok(answer) => Some(Ok(answer.answers)),
                        Err(DemandError::Fallback(_)) => None,
                        Err(DemandError::Budget(exceeded)) => Some(Err(exceeded)),
                    }
                }
            };
            let answers = match demanded {
                Some(result) => result,
                None if budget.is_unlimited() => {
                    Ok(query.evaluate_with_threads(&snapshot, shared.threads))
                }
                None => query.evaluate_budgeted(&snapshot, shared.threads, &budget),
            };
            match answers {
                Ok(answers) => Response::Answers {
                    epoch: snapshot.epoch(),
                    tuples: answers.into_iter().collect(),
                },
                Err(BudgetExceeded::Deadline) => Response::Error(format!(
                    "deadline timeout_ms={}",
                    budget.timeout.map_or(0, |t| t.as_millis() as u64)
                )),
                Err(BudgetExceeded::RowLimit) => Response::Error(format!(
                    "row-limit max_rows={}",
                    budget.max_rows.unwrap_or(0)
                )),
                Err(BudgetExceeded::Cancelled) => Response::Error("cancelled".into()),
            }
        }
        Request::Validate { source } => {
            // A dry run against the serving schema: no engine lock, no
            // state change beyond the counters.
            let options = AnalyzerOptions {
                require_datalog: true,
                known_edb: shared.serving_edb.clone(),
                known_arities: shared.serving_arities.clone(),
                query: None,
            };
            let (_, report) = analyze_source(&source, &options);
            shared
                .diagnostics_emitted
                .fetch_add(report.diagnostics.len() as u64, Ordering::SeqCst);
            let admissible =
                report.admissible() || shared.config.admission == AdmissionPolicy::WarnOnly;
            if !admissible {
                shared.programs_rejected.fetch_add(1, Ordering::SeqCst);
            }
            Response::Diagnostics {
                admissible,
                diagnostics: report.diagnostics,
            }
        }
        Request::Stats => {
            let Ok(engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            let (wal_records, wal_bytes, snapshots_written, snapshot_failures) = engine.wal_stats();
            let inner = engine.engine();
            let stats = inner.stats();
            let demand = shared.demand.stats();
            Response::Ok(format!(
                "{{\"epoch\":{},\"atoms\":{},\"derived_atoms\":{},\"iterations\":{},\
                 \"rounds_incremental\":{},\"strata_skipped\":{},\"joins_evaluated\":{},\
                 \"join_probes\":{},\"index_bytes\":{},\"wal_records\":{},\"wal_bytes\":{},\
                 \"snapshots_written\":{},\"snapshot_failures\":{},\"programs_rejected\":{},\
                 \"diagnostics_emitted\":{},\"magic_queries\":{},\"magic_cache_hits\":{},\
                 \"demanded_tuples\":{},\"full_materialised_tuples\":{},\
                 \"transport\":{},\
                 \"latency\":{{\"query\":{},\"fact\":{},\"batch\":{}}},\"degraded\":{}}}",
                inner.epoch(),
                inner.instance().len(),
                stats.derived_atoms,
                stats.iterations,
                stats.rounds_incremental,
                stats.strata_skipped,
                stats.joins_evaluated,
                stats.join_probes,
                inner.instance().index_bytes(),
                wal_records,
                wal_bytes,
                snapshots_written,
                snapshot_failures,
                shared.programs_rejected.load(Ordering::SeqCst),
                shared.diagnostics_emitted.load(Ordering::SeqCst),
                demand.magic_queries,
                demand.magic_cache_hits,
                demand.demanded_tuples,
                inner.instance().len(),
                shared.transport.render(),
                shared.latency_query.render(),
                shared.latency_fact.render(),
                shared.latency_batch.render(),
                shared.degraded.load(Ordering::SeqCst),
            ))
        }
        Request::Snapshot => {
            let Ok(mut engine) = shared.engine.lock() else {
                shared.degraded.store(true, Ordering::SeqCst);
                return Response::Error(ENGINE_UNAVAILABLE.into());
            };
            match engine.snapshot_now() {
                Ok(()) => Response::Ok(format!("snapshot epoch={}", engine.engine().epoch())),
                Err(error) => Response::Error(error.to_string()),
            }
        }
        Request::Shutdown => {
            // Normally intercepted inline by the reactor (so it cannot be
            // starved by a saturated worker pool); kept here so the
            // handler's semantics stay complete on their own.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.waker.wake();
            Response::Ok("bye".into())
        }
    }
}

/// A running live-materialisation server: one reactor thread multiplexing
/// every connection over epoll, plus its worker pool, serving the shared
/// engine.
pub struct LiveServer {
    addr: SocketAddr,
    reactor: JoinHandle<()>,
    shared: Arc<Shared>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving the given engine **without durability** and with default
    /// limits. The engine may already hold a materialisation — its current
    /// state is published as the first snapshot.
    pub fn start(engine: IncrementalEngine, addr: impl ToSocketAddrs) -> io::Result<LiveServer> {
        LiveServer::start_with(
            DurableEngine::volatile(engine),
            addr,
            ServerConfig::default(),
        )
    }

    /// Binds `addr` and serves a (possibly durable, possibly recovered)
    /// engine under the given transport limits and budget defaults.
    pub fn start_with(
        engine: DurableEngine,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<LiveServer> {
        // Defensive gate: the serving program itself must pass validation.
        // `IncrementalEngine::new` already guarantees a Datalog program, so
        // this only fires for genuinely broken hand-built programs — but a
        // fail-closed server refuses to come up serving one.
        let program = engine.engine().program();
        let serving_edb = program.extensional_predicates();
        let serving_idb = program.intensional_predicates();
        let serving_arities: BTreeMap<Predicate, usize> = program
            .schema()
            .into_iter()
            .filter_map(|p| program.arity_of(p).map(|a| (p, a)))
            .collect();
        let report = vadalog_analysis::analyze(program);
        if report.has_errors() && config.admission == AdmissionPolicy::FailClosed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "serving program fails validation with {} error(s); first: {}",
                    report.count(vadalog_analysis::Severity::Error),
                    report
                        .diagnostics
                        .iter()
                        .find(|d| d.severity == vadalog_analysis::Severity::Error)
                        .map(|d| d.to_string())
                        .unwrap_or_default(),
                ),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = engine.engine().threads();
        let published = RwLock::new(engine.engine().snapshot());
        let demand = DemandEngine::new(program.clone()).with_threads(threads);
        let waker = Arc::new(epoll::Waker::new()?);
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            published,
            threads,
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            serving_edb,
            serving_idb,
            serving_arities,
            programs_rejected: AtomicU64::new(0),
            diagnostics_emitted: AtomicU64::new(0),
            demand,
            latency_query: LatencyHistogram::default(),
            latency_fact: LatencyHistogram::default(),
            latency_batch: LatencyHistogram::default(),
            transport: TransportCounters::default(),
            waker: Arc::clone(&waker),
            config,
        });
        let reactor = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || reactor::run(shared, listener, waker)
        });
        Ok(LiveServer {
            addr,
            reactor,
            shared,
        })
    }

    /// Recovers the state persisted in `config.dir` (snapshot + WAL tail
    /// replay, bit-identical to the uncrashed engine) into `engine` — a
    /// fresh engine over the same program — and starts serving it. Returns
    /// the running server and the [`RecoveryReport`](crate::durability::RecoveryReport)
    /// describing what was restored.
    pub fn recover(
        engine: IncrementalEngine,
        config: crate::durability::DurabilityConfig,
        addr: impl ToSocketAddrs,
        server_config: ServerConfig,
    ) -> Result<(LiveServer, crate::durability::RecoveryReport), crate::durability::ServiceError>
    {
        let (durable, report) = DurableEngine::recover(engine, config)?;
        let server = LiveServer::start_with(durable, addr, server_config)?;
        Ok((server, report))
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown programmatically — equivalent to a `SHUTDOWN`
    /// request: the listener closes, in-flight requests complete and
    /// flush, the WAL is flushed and the clean-shutdown marker appended.
    /// The eventfd waker interrupts the reactor's wait immediately.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Waits for the server to stop: the reactor drains every connection,
    /// joins its worker pool, and closes the WAL cleanly.
    pub fn join(self) {
        let _ = self.reactor.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;
    use vadalog_model::parser::parse_rules;

    const TWO_CLOSURES: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                                s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).";

    fn start(engine: IncrementalEngine) -> LiveServer {
        LiveServer::start(engine, "127.0.0.1:0").expect("bind loopback")
    }

    /// A minimal blocking protocol client for the tests.
    pub(crate) struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        pub(crate) fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect to live server");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            Client {
                reader,
                writer: BufWriter::new(stream),
            }
        }

        /// Sends one request line and reads the full response: one line, or
        /// — for query answers and validation reports — the header plus
        /// exactly `answers=<n>` / `diagnostics=<n>` body lines plus the
        /// `END` line (framing by count, as the protocol requires).
        pub(crate) fn send(&mut self, line: &str) -> Vec<String> {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("write request");
            self.writer.flush().expect("flush request");
            let mut lines = vec![self.read_line()];
            let counted = lines[0]
                .strip_prefix("OK answers=")
                .or_else(|| lines[0].strip_prefix("OK diagnostics="));
            if let Some(rest) = counted {
                let count: usize = rest
                    .split_whitespace()
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("body-line count in header");
                for _ in 0..count {
                    let body = self.read_line();
                    lines.push(body);
                }
                let end = self.read_line();
                assert_eq!(end, "END", "counted responses must terminate with END");
                lines.push(end);
            }
            lines
        }

        fn read_line(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            line.trim_end_matches('\n').to_string()
        }
    }

    fn engine() -> IncrementalEngine {
        IncrementalEngine::new(parse_rules(TWO_CLOSURES).unwrap()).unwrap()
    }

    #[test]
    fn full_protocol_round_trip_over_loopback() {
        let server = start(engine());
        let addr = server.addr();
        let mut client = Client::connect(addr);

        let batch = client.send("BATCH edge(a, b). edge(b, c). link(p, q).");
        // t-stratum: seed + 2 semi-naive rounds; s-stratum: seed + 1.
        assert_eq!(
            batch,
            vec!["OK inserted=3 duplicate=0 derived=4 strata_skipped=0 rounds=5 epoch=1"]
        );
        let fact = client.send("FACT edge(c, d).");
        assert!(fact[0].starts_with("OK inserted=1 "), "{fact:?}");
        assert!(
            fact[0].contains("strata_skipped=1"),
            "link stratum untouched: {fact:?}"
        );

        let answers = client.send("QUERY ?(X) :- t(X, d).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "a", "b", "c", "END"]);
        let pairs = client.send("QUERY ?(X, Y) :- s(X, Y).");
        assert_eq!(pairs, vec!["OK answers=1 epoch=2", "p q", "END"]);

        let stats = client.send("STATS");
        assert!(stats[0].starts_with("OK {\"epoch\":2,"), "{stats:?}");
        assert!(stats[0].contains("\"rounds_incremental\""), "{stats:?}");
        assert!(
            stats[0].contains("\"wal_records\":0"),
            "volatile server: {stats:?}"
        );
        assert!(stats[0].contains("\"degraded\":false"), "{stats:?}");

        // Unknown and malformed requests keep the connection alive.
        assert!(client.send("NOPE")[0].starts_with("ERR unknown command"));
        assert!(client.send("QUERY ?(X) :- ")[0].starts_with("ERR "));
        assert!(client.send("FACT edge(a b).")[0].starts_with("ERR "));
        let still = client.send("QUERY ? :- t(a, d).");
        assert_eq!(still, vec!["OK answers=1 epoch=2", "", "END"]);

        // A constant that renders exactly as the terminator keyword: the
        // count-based framing keeps the answer distinguishable from `END`.
        client.send("FACT edge(\"END\", zz).");
        let tricky = client.send("QUERY ?(X) :- edge(X, zz).");
        assert_eq!(tricky, vec!["OK answers=1 epoch=3", "END", "END"]);

        assert_eq!(client.send("SHUTDOWN"), vec!["OK bye"]);
        drop(client);
        server.join();
    }

    #[test]
    fn rejected_batches_leave_the_service_fully_usable() {
        let server = start(engine().with_row_capacity(3));
        let mut client = Client::connect(server.addr());

        client.send("BATCH edge(a, b). edge(b, c).");
        // 2 existing + 2 incoming > 3: rejected as a protocol error, not a
        // dead server — and not a half-applied batch.
        let err = client.send("BATCH edge(c, d). edge(d, e).");
        assert!(err[0].starts_with("ERR relation `edge` is full"), "{err:?}");
        let answers = client.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(answers[0], "OK answers=3 epoch=1", "{answers:?}");

        // The service keeps ingesting up to the budget.
        let ok = client.send("FACT edge(c, d).");
        assert!(ok[0].starts_with("OK inserted=1 "), "{ok:?}");
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "b", "c", "d", "END"]);

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn queries_are_served_from_epoch_snapshots_across_connections() {
        let server = start(engine());
        let addr = server.addr();
        let mut writer_conn = Client::connect(addr);
        let mut reader_conn = Client::connect(addr);

        writer_conn.send("FACT edge(a, b).");
        let before = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(before[0], "OK answers=1 epoch=1");

        // A second connection's ingest is visible to the first reader's
        // next query, with a bumped epoch.
        writer_conn.send("FACT edge(b, c).");
        let after = reader_conn.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(after[0], "OK answers=3 epoch=2");

        // Concurrent readers all see a consistent snapshot.
        let handles: Vec<std::thread::JoinHandle<String>> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    c.send("QUERY ?(X, Y) :- t(X, Y).")[0].clone()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), "OK answers=3 epoch=2");
        }

        reader_conn.send("SHUTDOWN");
        drop(reader_conn);
        drop(writer_conn);
        server.join();
    }

    #[test]
    fn query_budgets_answer_structured_errors_and_keep_serving() {
        let server = start(engine());
        let addr = server.addr();
        let mut client = Client::connect(addr);
        client.send("BATCH edge(a, b). edge(b, c). edge(c, d).");

        // A zero deadline always trips; the error names the limit.
        let timed_out = client.send("QUERY TIMEOUT_MS=0 ?(X, Y) :- t(X, Y).");
        assert_eq!(timed_out, vec!["ERR deadline timeout_ms=0"]);
        // A row cap below the answer count trips.
        let capped = client.send("QUERY MAX_ROWS=2 ?(X, Y) :- t(X, Y).");
        assert_eq!(capped, vec!["ERR row-limit max_rows=2"]);

        // The connection and the engine remain fully usable afterwards.
        let ok = client.send("QUERY MAX_ROWS=100 ?(X, Y) :- t(X, Y).");
        assert_eq!(ok[0], "OK answers=6 epoch=1");
        let unlimited = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(
            unlimited,
            vec!["OK answers=3 epoch=1", "b", "c", "d", "END"]
        );
        let ingest = client.send("FACT edge(d, e).");
        assert!(ingest[0].starts_with("OK inserted=1 "), "{ingest:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn magic_queries_hit_the_specialised_program_cache() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c). edge(c, d). link(p, q).");

        // A bound query through the demand path answers exactly what the
        // full path answers.
        let full = client.send("QUERY MODE=FULL ?(X) :- t(a, X).");
        let magic = client.send("QUERY MODE=MAGIC ?(X) :- t(a, X).");
        assert_eq!(full, vec!["OK answers=3 epoch=1", "b", "c", "d", "END"]);
        assert_eq!(magic, full);

        // The second same-pattern query (different constant) skips the
        // rewrite + compile: one cache hit, two magic queries.
        let again = client.send("QUERY MODE=MAGIC ?(X) :- t(b, X).");
        assert_eq!(again, vec!["OK answers=2 epoch=1", "c", "d", "END"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"magic_queries\":2"), "{stats:?}");
        assert!(stats[0].contains("\"magic_cache_hits\":1"), "{stats:?}");
        assert!(
            !stats[0].contains("\"demanded_tuples\":0,"),
            "the magic path derived something: {stats:?}"
        );
        assert!(
            stats[0].contains("\"full_materialised_tuples\":"),
            "{stats:?}"
        );

        // AUTO takes the magic path for bound queries too…
        let auto = client.send("QUERY ?(X) :- t(c, X).");
        assert_eq!(auto, vec!["OK answers=1 epoch=1", "d", "END"]);
        // …and falls back to full evaluation when the query is all-free,
        // without disturbing the magic counters.
        let free = client.send("QUERY ?(X, Y) :- s(X, Y).");
        assert_eq!(free, vec!["OK answers=1 epoch=1", "p q", "END"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"magic_queries\":3"), "{stats:?}");
        assert!(stats[0].contains("\"magic_cache_hits\":2"), "{stats:?}");

        // Per-verb latency accounting saw every QUERY, the FACT-free
        // session and exactly one BATCH.
        assert!(
            stats[0].contains("\"latency\":{\"query\":{\"count\":5,"),
            "{stats:?}"
        );
        assert!(stats[0].contains("\"fact\":{\"count\":0,"), "{stats:?}");
        assert!(stats[0].contains("\"batch\":{\"count\":1,"), "{stats:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn durable_server_recovers_its_materialisation_after_restart() {
        let dir =
            std::env::temp_dir().join(format!("vadalog-server-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = crate::durability::DurabilityConfig::new(&dir);
        let durable = DurableEngine::create(engine(), config.clone()).unwrap();
        let server =
            LiveServer::start_with(durable, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"wal_records\":1"), "{stats:?}");
        client.send("SHUTDOWN");
        drop(client);
        server.join();

        // "Restart": a fresh engine over the same program recovers the
        // materialisation from disk instead of re-deriving from scratch.
        let (server, report) =
            LiveServer::recover(engine(), config, "127.0.0.1:0", ServerConfig::default()).unwrap();
        assert!(
            report.clean_shutdown,
            "the shutdown above flushed and marked the WAL"
        );
        let mut client = Client::connect(server.addr());
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=2 epoch=1", "b", "c", "END"]);
        // The SNAPSHOT verb persists on demand and truncates the log.
        assert_eq!(client.send("SNAPSHOT"), vec!["OK snapshot epoch=1"]);
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"snapshots_written\":1"), "{stats:?}");
        client.send("SHUTDOWN");
        drop(client);
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_gate_rejects_bad_programs_and_keeps_serving() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("BATCH edge(a, b). edge(b, c).");

        // A candidate writing into the serving EDB: rejected (VLG010) and
        // the rejection is visible in STATS — but nothing about the live
        // engine changed.
        let verdict = client.send("VALIDATE edge(Y, X) :- edge(X, Y).");
        assert!(verdict[0].starts_with("OK diagnostics="), "{verdict:?}");
        assert!(verdict[0].ends_with("admissible=false"), "{verdict:?}");
        assert!(
            verdict.iter().any(|l| l.starts_with("VLG010 error")),
            "EDB collision named: {verdict:?}"
        );
        assert_eq!(*verdict.last().unwrap(), "END");
        // Every reported line round-trips through the protocol parser.
        for line in &verdict[1..verdict.len() - 1] {
            let parsed = crate::protocol::parse_diagnostic_line(line).unwrap();
            assert_eq!(parsed.to_string(), *line);
        }

        // A clean candidate over the serving schema is admissible.
        let clean = client.send("VALIDATE reach(X, Y) :- edge(X, Y).");
        assert!(clean[0].ends_with("admissible=true"), "{clean:?}");

        // An arity conflict with the serving schema is an error.
        let arity = client.send("VALIDATE out(X) :- edge(X).");
        assert!(arity[0].ends_with("admissible=false"), "{arity:?}");
        assert!(
            arity.iter().any(|l| l.starts_with("VLG001 error")),
            "{arity:?}"
        );

        // The rejected programs left the engine fully serviceable.
        let ok = client.send("FACT edge(c, d).");
        assert!(ok[0].starts_with("OK inserted=1 "), "{ok:?}");
        let answers = client.send("QUERY ?(X) :- t(a, X).");
        assert_eq!(answers, vec!["OK answers=3 epoch=2", "b", "c", "d", "END"]);

        // STATS counts both rejections and every diagnostic emitted.
        let stats = client.send("STATS");
        assert!(stats[0].contains("\"programs_rejected\":2"), "{stats:?}");
        assert!(stats[0].contains("\"diagnostics_emitted\":"), "{stats:?}");
        assert!(
            !stats[0].contains("\"diagnostics_emitted\":0,"),
            "{stats:?}"
        );

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn fail_closed_ingest_refuses_facts_over_derived_predicates() {
        let server = start(engine());
        let mut client = Client::connect(server.addr());
        client.send("FACT edge(a, b).");

        // t is rule-owned: asserting into it would mix asserted and
        // derived tuples, so the fail-closed default refuses.
        let refused = client.send("FACT t(a, z).");
        assert!(
            refused[0].starts_with("ERR fact targets derived predicate `t`"),
            "{refused:?}"
        );
        let answers = client.send("QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(
            answers[0], "OK answers=1 epoch=1",
            "the ingest never happened: {answers:?}"
        );

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn warn_only_admission_admits_everything_but_still_counts() {
        let config = ServerConfig {
            admission: AdmissionPolicy::WarnOnly,
            ..ServerConfig::default()
        };
        let server =
            LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
                .unwrap();
        let mut client = Client::connect(server.addr());

        // The same EDB-collision candidate is admitted under WarnOnly…
        let verdict = client.send("VALIDATE edge(Y, X) :- edge(X, Y).");
        assert!(verdict[0].ends_with("admissible=true"), "{verdict:?}");
        // …and legacy ingest behaviour (facts into derived relations) is
        // preserved.
        client.send("FACT edge(a, b).");
        let asserted = client.send("FACT t(q, r).");
        assert!(asserted[0].starts_with("OK inserted=1 "), "{asserted:?}");

        let stats = client.send("STATS");
        assert!(stats[0].contains("\"programs_rejected\":0"), "{stats:?}");

        client.send("SHUTDOWN");
        drop(client);
        server.join();
    }

    #[test]
    fn programmatic_shutdown_needs_no_connection() {
        let server = start(engine());
        server.request_shutdown();
        // Joins promptly: the accept loop polls the flag, no self-connect
        // wake is involved.
        server.join();
    }
}
