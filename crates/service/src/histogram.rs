//! Fixed-bucket log-scale latency histograms for STATS.
//!
//! Each per-verb latency series is a lock-free histogram over microsecond
//! values: 4 sub-buckets per power-of-two octave (an HdrHistogram-style
//! layout), which bounds the relative quantile error at 25% while keeping
//! the whole structure a flat array of atomics — recording is two
//! `fetch_add`s and a `fetch_max`, cheap enough for the request hot path.
//!
//! `count`, `total`, and `max` stay exact (they are tracked separately from
//! the buckets), so throughput and mean derived from STATS are unaffected
//! by bucketing; only the percentiles are approximate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave. 4 gives ≤ 25% quantile error.
const SUBBUCKETS: usize = 4;
/// Octaves 2..=63 each get `SUBBUCKETS` buckets; values 0..4 get their own.
const BUCKETS: usize = SUBBUCKETS + (64 - 2) * SUBBUCKETS;

/// Maps a microsecond value to its bucket index.
///
/// Values below `SUBBUCKETS` index directly; larger values use
/// `floor(log2 v)` for the octave and the next two mantissa bits for the
/// sub-bucket, so bucket widths grow geometrically.
fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (octave - 2)) & 0b11) as usize;
    SUBBUCKETS + (octave - 2) * SUBBUCKETS + sub
}

/// The inclusive upper edge of a bucket — what quantile queries report, so
/// estimates err toward "slower than reality", never the flattering way.
fn bucket_upper_edge(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let octave = (index - SUBBUCKETS) / SUBBUCKETS + 2;
    let sub = (index - SUBBUCKETS) % SUBBUCKETS;
    let base = 1u128 << octave;
    let width = 1u128 << (octave - 2);
    // The top octave's last sub-bucket nominally ends at 2^64 - 1; the
    // u128 intermediate keeps the computation from overflowing there.
    (base + (sub as u128 + 1) * width - 1).min(u64::MAX as u128) as u64
}

/// A concurrent log-scale histogram of microsecond latencies.
pub struct LatencyHistogram {
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observations, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.total_micros.load(Ordering::Relaxed)
    }

    /// Exact maximum observation, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (0.0..=1.0): the upper edge of the bucket
    /// containing the `ceil(q * count)`-th smallest observation, clamped to
    /// the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_edge(index).min(self.max_micros());
            }
        }
        self.max_micros()
    }

    /// Cumulative bucket counts for Prometheus exposition: one
    /// `(inclusive upper edge in micros, observations ≤ edge)` pair per
    /// bucket that holds at least one observation, in increasing-edge
    /// order. Empty buckets are elided (the cumulative counts already
    /// carry them); the caller appends the mandatory `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                cumulative += count;
                out.push((bucket_upper_edge(index), cumulative));
            }
        }
        out
    }

    /// Renders the histogram as the STATS JSON object for one verb. The
    /// field order starts with `count` — existing clients (and tests) key
    /// off that prefix.
    pub fn render(&self) -> String {
        format!(
            "{{\"count\":{},\"total_micros\":{},\"max_micros\":{},\
             \"p50_micros\":{},\"p95_micros\":{},\"p99_micros\":{}}}",
            self.count(),
            self.total_micros(),
            self.max_micros(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every value maps into a bucket whose span contains it, edges are
        // monotone, and consecutive values never map to a smaller bucket.
        let mut last_index = 0usize;
        for value in 0..4096u64 {
            let index = bucket_index(value);
            assert!(index >= last_index, "bucket index regressed at {value}");
            assert!(value <= bucket_upper_edge(index));
            last_index = index;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_fields_are_exact() {
        let h = LatencyHistogram::default();
        for v in [3u64, 10, 100, 1000, 57] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.total_micros(), 1170);
        assert_eq!(h.max_micros(), 1000);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let estimate = h.quantile(q);
            assert!(
                estimate >= exact && estimate as f64 <= exact as f64 * 1.25,
                "q={q}: estimate {estimate} not within [{exact}, {}]",
                exact as f64 * 1.25
            );
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), 0, "empty histogram reports 0");
        h.record(42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(1.0), 42);
        // A single observation is clamped to the exact max, not the bucket
        // edge.
        assert_eq!(h.quantile(0.5), 42);
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.total_micros(), 0);
        assert_eq!(h.max_micros(), 0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LatencyHistogram::default();
        h.record(123_456);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456, "q={q}");
        }
        assert_eq!(
            h.cumulative_buckets(),
            vec![(bucket_upper_edge(bucket_index(123_456)), 1)]
        );
    }

    #[test]
    fn top_bucket_saturation_stays_exact_and_ordered() {
        let h = LatencyHistogram::default();
        // Saturate the final bucket: u64::MAX and friends all land there.
        for v in [u64::MAX, u64::MAX - 1, u64::MAX / 2 + 1] {
            h.record(v);
        }
        h.record(10);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_micros(), u64::MAX);
        // The quantile clamp keeps the report at the exact max even though
        // the bucket's nominal upper edge would overflow semantics.
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Low quantiles report the small value's bucket edge (10 lives in
        // the [10, 11] sub-bucket), never a saturated top bucket.
        assert_eq!(h.quantile(0.25), 11);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 4, "cumulative reaches count");
        assert!(buckets
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn randomized_quantiles_are_monotone_and_bounded_by_max() {
        // A cheap deterministic LCG — no external randomness crates.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..20 {
            let h = LatencyHistogram::default();
            let samples = 1 + (next() % 500) as usize;
            for _ in 0..samples {
                h.record(next() % 10_000_000);
            }
            let (p50, p95, p99, max) = (
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max_micros(),
            );
            assert!(
                p50 <= p95 && p95 <= p99 && p99 <= max,
                "round {round}: p50={p50} p95={p95} p99={p99} max={max}"
            );
        }
    }

    #[test]
    fn render_is_valid_shape_and_count_first() {
        let h = LatencyHistogram::default();
        h.record(7);
        let json = h.render();
        assert!(json.starts_with("{\"count\":1,"), "got {json}");
        assert!(json.contains("\"p99_micros\":7"));
        assert!(json.ends_with('}'));
    }
}
