//! The durable engine: WAL-before-mutate ingestion, snapshot cadence, and
//! crash recovery over [`IncrementalEngine`].
//!
//! # The durability invariant
//!
//! Every batch is appended (and, under the default [`SyncPolicy::Always`],
//! fsynced) to the WAL **before** the engine applies it. The log therefore
//! always holds a superset of the applied batches, and the applied state is
//! always reproducible as *snapshot + WAL tail replay*:
//!
//! * WAL append fails → the record is rolled back, the engine is not
//!   touched, the client gets an error. Nothing to recover.
//! * Crash after append, before/during apply → recovery replays the batch;
//!   the client never got an acknowledgement, and the recovered state is
//!   exactly what an uncrashed server would hold *after* acking it — the
//!   usual at-least-once window of any WAL system.
//! * Engine rejects the batch (arity conflict, capacity, …) → the record
//!   stays in the log and replay deterministically re-rejects it, because
//!   admission only depends on engine state, which replay reproduces.
//!
//! # Snapshots
//!
//! Every `snapshot_every` accepted batches (or on demand), the full engine
//! state is serialised via [`crate::snapshot`] and the WAL is truncated.
//! A failed snapshot never fails the ingest that triggered it — the WAL
//! simply keeps growing and the failure is counted. Sequence numbers stay
//! monotonic across truncations, so a crash *between* the snapshot rename
//! and the WAL reset recovers correctly: records the snapshot already
//! covers are skipped by sequence number, not replayed twice.

use crate::failpoints;
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotData};
use crate::wal::{replay, SyncPolicy, Wal, WalRecord};
use std::io;
use std::path::{Path, PathBuf};
use vadalog_datalog::{IncrementalEngine, IngestOutcome};
use vadalog_model::{Atom, ModelError};

/// An error from the durable ingestion path: either the engine rejected
/// the batch (a protocol-level error; the service keeps running) or the
/// durability layer failed (I/O).
#[derive(Debug)]
pub enum ServiceError {
    /// The engine rejected the batch; the instance is untouched.
    Model(ModelError),
    /// The WAL or snapshot I/O failed; the instance is untouched.
    Io(io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Model(error) => error.fmt(f),
            ServiceError::Io(error) => write!(f, "durability failure: {error}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ModelError> for ServiceError {
    fn from(error: ModelError) -> ServiceError {
        ServiceError::Model(error)
    }
}

impl From<io::Error> for ServiceError {
    fn from(error: io::Error) -> ServiceError {
        ServiceError::Io(error)
    }
}

/// Where and how a [`DurableEngine`] persists.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub sync: SyncPolicy,
    /// Snapshot automatically after this many accepted batches (`None`:
    /// only on demand).
    pub snapshot_every: Option<u64>,
}

impl DurabilityConfig {
    /// Durability in `dir` with per-batch fsync and no automatic snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            snapshot_every: None,
        }
    }

    /// Sets the automatic snapshot cadence.
    pub fn snapshot_every(mut self, batches: u64) -> DurabilityConfig {
        self.snapshot_every = Some(batches);
        self
    }

    /// Sets the WAL fsync policy.
    pub fn sync(mut self, policy: SyncPolicy) -> DurabilityConfig {
        self.sync = policy;
        self
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }
}

/// What [`DurableEngine::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot the recovery started from (`None`: no
    /// snapshot; replay started from an empty engine).
    pub snapshot_epoch: Option<u64>,
    /// WAL batches replayed into the engine.
    pub records_replayed: u64,
    /// WAL records skipped because the snapshot already covered them (a
    /// crash landed between snapshot rename and WAL truncation).
    pub stale_skipped: u64,
    /// Bytes dropped off the WAL tail (torn last record or corruption).
    pub tail_dropped_bytes: u64,
    /// `true` iff the log ends with the clean-shutdown marker.
    pub clean_shutdown: bool,
}

/// [`IncrementalEngine`] plus its durability machinery. All mutation goes
/// through [`DurableEngine::ingest`], which enforces WAL-before-mutate.
#[derive(Debug)]
pub struct DurableEngine {
    engine: IncrementalEngine,
    wal: Option<Wal>,
    config: Option<DurabilityConfig>,
    batches_since_snapshot: u64,
    snapshots_written: u64,
    snapshot_failures: u64,
}

impl DurableEngine {
    /// A purely in-memory engine: no WAL, no snapshots, no recovery. The
    /// ingest path is identical minus the log append.
    pub fn volatile(engine: IncrementalEngine) -> DurableEngine {
        DurableEngine {
            engine,
            wal: None,
            config: None,
            batches_since_snapshot: 0,
            snapshots_written: 0,
            snapshot_failures: 0,
        }
    }

    /// Starts durable operation in `config.dir`, creating the directory
    /// and a fresh WAL. Any existing log or snapshot there is replaced —
    /// use [`DurableEngine::recover`] to resume from one. The engine's
    /// current state (often empty) is written as the initial snapshot so
    /// the directory is always recoverable, even before the first ingest.
    pub fn create(
        engine: IncrementalEngine,
        config: DurabilityConfig,
    ) -> Result<DurableEngine, ServiceError> {
        std::fs::create_dir_all(&config.dir)?;
        let wal = Wal::create(&config.wal_path(), config.sync)?;
        let mut durable = DurableEngine {
            engine,
            wal: Some(wal),
            config: Some(config),
            batches_since_snapshot: 0,
            snapshots_written: 0,
            snapshot_failures: 0,
        };
        durable.snapshot_now()?;
        Ok(durable)
    }

    /// Recovers the state persisted in `config.dir`: restores the snapshot
    /// (if any) into `engine` — which must be a fresh engine over the
    /// *same program* as the one that wrote the directory — then replays
    /// the WAL tail, skipping records the snapshot already covers and
    /// tolerating a torn or corrupt tail (dropped, not fatal). The
    /// recovered engine is bit-identical to an uncrashed server that
    /// accepted the same WAL'd batches.
    pub fn recover(
        engine: IncrementalEngine,
        config: DurabilityConfig,
    ) -> Result<(DurableEngine, RecoveryReport), ServiceError> {
        std::fs::create_dir_all(&config.dir)?;
        let mut span = vadalog_obs::span("recovery.replay");
        let mut engine = engine;
        let snapshot = read_snapshot(&config.snapshot_path())?;
        let mut last_seq = 0;
        let snapshot_epoch = snapshot.as_ref().map(|data| data.epoch);
        if let Some(data) = snapshot {
            last_seq = data.last_seq;
            engine.restore_state(data.instance, data.stats, data.epoch);
        }

        let scanned = replay(&config.wal_path())?;
        let mut report = RecoveryReport {
            snapshot_epoch,
            records_replayed: 0,
            stale_skipped: 0,
            tail_dropped_bytes: scanned.dropped_bytes,
            clean_shutdown: scanned.clean_shutdown,
        };
        for record in &scanned.records {
            match record {
                WalRecord::Batch { seq, facts } => {
                    if *seq <= last_seq {
                        report.stale_skipped += 1;
                        continue;
                    }
                    // Replay reproduces the original admission decision:
                    // an error here is a batch the live server also
                    // rejected (deterministically, from the same state).
                    let _ = self_ingest(&mut engine, facts);
                    report.records_replayed += 1;
                }
                WalRecord::CleanShutdown { .. } => {}
            }
        }

        if span.active() {
            span.kv("replayed", report.records_replayed);
            span.kv("stale_skipped", report.stale_skipped);
            span.kv("tail_dropped_bytes", report.tail_dropped_bytes);
        }

        let mut wal = if scanned.valid_len == 0 {
            // No log existed yet (fresh directory next to a snapshot).
            Wal::create(&config.wal_path(), config.sync)?
        } else {
            Wal::open_after_replay(&config.wal_path(), config.sync, &scanned)?
        };
        // The snapshot may certify sequence numbers past the end of the
        // (truncated) log — e.g. a crash right after an automatic snapshot
        // reset the WAL. New appends must not re-use those numbers, or the
        // next recovery would skip them as already-covered.
        wal.resume_sequence(last_seq + 1);
        Ok((
            DurableEngine {
                engine,
                wal: Some(wal),
                config: Some(config),
                batches_since_snapshot: 0,
                snapshots_written: 0,
                snapshot_failures: 0,
            },
            report,
        ))
    }

    /// The wrapped engine (queries, snapshots, stats).
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }

    /// Ingests one batch under the durability invariant: WAL append (and
    /// fsync) first, engine mutation second, automatic snapshot (if due)
    /// last. See the [module docs](self) for the failure cases.
    pub fn ingest(&mut self, facts: &[Atom]) -> Result<IngestOutcome, ServiceError> {
        if let Some(wal) = &mut self.wal {
            wal.append_batch(facts)?;
        }
        // The window where a crash loses the ack but not the batch.
        failpoints::check("durable.mid_ingest")?;
        let outcome = self_ingest(&mut self.engine, facts)?;
        if let Some(every) = self.config.as_ref().and_then(|c| c.snapshot_every) {
            self.batches_since_snapshot += 1;
            if self.batches_since_snapshot >= every {
                // A failed automatic snapshot must not fail the (already
                // durable, already applied) ingest: count it and let the
                // WAL keep growing until the next attempt lands.
                match self.snapshot_now() {
                    Ok(()) => {}
                    Err(_) => self.snapshot_failures += 1,
                }
            }
        }
        Ok(outcome)
    }

    /// Serialises the current engine state and truncates the WAL. The
    /// write is atomic (tmp + rename); the truncation only happens after
    /// the snapshot is durably installed.
    pub fn snapshot_now(&mut self) -> Result<(), ServiceError> {
        let Some(config) = &self.config else {
            return Ok(()); // volatile: nothing to persist
        };
        let last_seq = self.wal.as_ref().map_or(0, Wal::last_seq);
        let data = SnapshotData {
            epoch: self.engine.epoch(),
            last_seq,
            stats: *self.engine.stats(),
            instance: self.engine.instance().clone(),
        };
        write_snapshot(&config.snapshot_path(), &data)?;
        if let Some(wal) = &mut self.wal {
            wal.reset()?;
        }
        self.batches_since_snapshot = 0;
        self.snapshots_written += 1;
        Ok(())
    }

    /// Flushes the WAL and appends the clean-shutdown marker. Called by
    /// the server after the last handler has drained.
    pub fn clean_shutdown(&mut self) -> Result<(), ServiceError> {
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
            wal.append_clean_shutdown()?;
        }
        Ok(())
    }

    /// (records appended, WAL bytes, snapshots written, snapshot failures)
    /// — the durability counters reported by `STATS`.
    pub fn wal_stats(&self) -> (u64, u64, u64, u64) {
        let (records, bytes) = self
            .wal
            .as_ref()
            .map_or((0, 0), |wal| (wal.records_appended(), wal.bytes()));
        (
            records,
            bytes,
            self.snapshots_written,
            self.snapshot_failures,
        )
    }

    /// The durability directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.config.as_ref().map(|config| config.dir.as_path())
    }
}

/// One ingest call, shared by the live path and replay so both sides of
/// the bit-identity property run exactly the same code.
fn self_ingest(
    engine: &mut IncrementalEngine,
    facts: &[Atom],
) -> Result<IngestOutcome, ModelError> {
    engine.ingest(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse_fact_list, parse_rules};

    const CLOSURE: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

    fn fresh_engine() -> IncrementalEngine {
        IncrementalEngine::new(parse_rules(CLOSURE).unwrap()).unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vadalog-durable-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn batches() -> Vec<Vec<Atom>> {
        [
            "edge(a, b). edge(b, c).",
            "edge(c, d).",
            "edge(d, e). edge(e, f).",
        ]
        .iter()
        .map(|src| parse_fact_list(src).unwrap())
        .collect()
    }

    #[test]
    fn crash_recovery_is_bit_identical_to_the_uncrashed_engine() {
        let dir = temp_dir("bitident");
        let mut durable =
            DurableEngine::create(fresh_engine(), DurabilityConfig::new(&dir)).unwrap();
        let mut reference = fresh_engine();
        for batch in batches() {
            durable.ingest(&batch).unwrap();
            reference.ingest(&batch).unwrap();
        }
        // "Crash": drop the durable engine without clean shutdown.
        drop(durable);

        let (recovered, report) =
            DurableEngine::recover(fresh_engine(), DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert!(!report.clean_shutdown);
        assert_eq!(report.tail_dropped_bytes, 0);
        let engine = recovered.engine();
        assert_eq!(
            engine.instance().row_layout(),
            reference.instance().row_layout()
        );
        assert_eq!(engine.stats(), reference.stats());
        assert_eq!(engine.epoch(), reference.epoch());
    }

    #[test]
    fn snapshots_truncate_the_log_and_recovery_replays_only_the_tail() {
        let dir = temp_dir("cadence");
        let config = DurabilityConfig::new(&dir).snapshot_every(2);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();
        for batch in batches() {
            durable.ingest(&batch).unwrap();
            reference.ingest(&batch).unwrap();
        }
        let (_, _, snapshots, failures) = durable.wal_stats();
        assert_eq!(snapshots, 2, "initial snapshot + one automatic");
        assert_eq!(failures, 0);
        durable.clean_shutdown().unwrap();
        drop(durable);

        let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert_eq!(
            report.snapshot_epoch,
            Some(2),
            "snapshot covers the first two batches"
        );
        assert_eq!(
            report.records_replayed, 1,
            "only the post-snapshot batch replays"
        );
        assert!(report.clean_shutdown);
        assert_eq!(
            recovered.engine().instance().row_layout(),
            reference.instance().row_layout()
        );
        assert_eq!(recovered.engine().stats(), reference.stats());
        assert_eq!(recovered.engine().epoch(), reference.epoch());
    }

    #[test]
    fn rejected_batches_rereject_deterministically_on_replay() {
        let dir = temp_dir("reject");
        let engine = fresh_engine().with_row_capacity(3);
        let mut durable = DurableEngine::create(engine, DurabilityConfig::new(&dir)).unwrap();
        let mut reference = fresh_engine().with_row_capacity(3);
        durable
            .ingest(&parse_fact_list("edge(a, b). edge(b, c).").unwrap())
            .unwrap();
        let _ = reference.ingest(&parse_fact_list("edge(a, b). edge(b, c).").unwrap());
        // Over capacity: rejected live, logged anyway, re-rejected on replay.
        let over = parse_fact_list("edge(c, d). edge(d, e).").unwrap();
        assert!(matches!(durable.ingest(&over), Err(ServiceError::Model(_))));
        let _ = reference.ingest(&over);
        drop(durable);

        let recovered_engine = fresh_engine().with_row_capacity(3);
        let (recovered, report) =
            DurableEngine::recover(recovered_engine, DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(
            recovered.engine().instance().row_layout(),
            reference.instance().row_layout()
        );
        assert_eq!(recovered.engine().epoch(), reference.epoch());
    }

    #[test]
    fn sequencing_survives_a_crash_right_after_a_snapshot_truncation() {
        let dir = temp_dir("seq-resume");
        let config = DurabilityConfig::new(&dir).snapshot_every(1);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();
        let first = parse_fact_list("edge(a, b).").unwrap();
        durable.ingest(&first).unwrap();
        reference.ingest(&first).unwrap();
        // The cadence-1 snapshot just truncated the WAL; crash here, with
        // an empty log next to a snapshot whose last_seq is 1.
        drop(durable);

        // Recover without a snapshot cadence, so the next batch lives only
        // in the WAL. It must continue the numbering past the snapshot:
        // were it logged as seq 1 again, the next recovery would skip it
        // as already covered.
        let no_cadence = DurabilityConfig::new(&dir);
        let (mut recovered, _) =
            DurableEngine::recover(fresh_engine(), no_cadence.clone()).unwrap();
        let second = parse_fact_list("edge(b, c).").unwrap();
        recovered.ingest(&second).unwrap();
        reference.ingest(&second).unwrap();
        drop(recovered);

        let (again, report) = DurableEngine::recover(fresh_engine(), no_cadence).unwrap();
        assert_eq!(
            report.stale_skipped, 0,
            "the post-snapshot batch is not stale"
        );
        assert_eq!(
            again.engine().instance().row_layout(),
            reference.instance().row_layout()
        );
        assert_eq!(again.engine().stats(), reference.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_engines_ingest_without_touching_disk() {
        let mut durable = DurableEngine::volatile(fresh_engine());
        durable
            .ingest(&parse_fact_list("edge(a, b).").unwrap())
            .unwrap();
        assert_eq!(durable.wal_stats(), (0, 0, 0, 0));
        assert!(durable.dir().is_none());
        durable.snapshot_now().unwrap();
        durable.clean_shutdown().unwrap();
    }
}
