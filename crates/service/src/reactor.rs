//! The readiness-based transport: one epoll reactor thread multiplexing
//! every connection, a small worker pool executing the transport-free
//! request handler, and the admission-control policy deciding which work
//! gets queued at all.
//!
//! # Structure
//!
//! * The **reactor thread** owns the listener, all connection sockets
//!   (nonblocking), their read/write buffers, and a timer wheel. It never
//!   evaluates a request: parsed requests are pushed onto a bounded job
//!   queue and picked up by workers, so a slow query cannot stall accepts,
//!   reads, or timeouts.
//! * **Workers** run [`handle_request`](crate::server) under
//!   `catch_unwind`: a panicking handler closes only its own connection
//!   (without a reply — the client cannot tell a half-served request from
//!   a crash, so it gets told nothing), while the engine mutex poisoning
//!   keeps its degraded-writes semantics.
//! * **Admission control** is enforced at two points: accepts beyond
//!   `max_connections` are answered `ERR overloaded retry_ms=<hint>` and
//!   closed immediately, and requests arriving while the job queue holds
//!   `max_queue_depth` entries are shed with the same structured error —
//!   the connection survives, only the request is refused. `STATS`,
//!   `METRICS` and `SHUTDOWN` are exempt (an operator diagnosing an
//!   overload must not be shed by it).
//! * **Deadlines** (line completion, write progress, optional idling) live
//!   in a hashed timer wheel with `poll_interval` granularity. Entries are
//!   validated when they fire — a stale entry for a connection that made
//!   progress is re-armed at its real deadline, not acted on.
//! * **Drain:** once shutdown is requested (by `SHUTDOWN` or
//!   programmatically) the listener closes, queued-but-undispatched
//!   requests answer `ERR shutting-down`, in-flight requests complete and
//!   their replies flush, then workers are joined and the WAL is closed
//!   cleanly. No self-connect wake is involved: the reactor sleeps in
//!   `epoll_wait` and an eventfd waker interrupts it.
//!
//! # Ordering
//!
//! Responses must leave a connection in request order even though parse
//! errors are known instantly and handler replies arrive asynchronously.
//! Every complete line therefore becomes a queue entry on its connection
//! ([`Work`]): requests and pre-rendered replies interleave in arrival
//! order, and the pump only advances the queue while no request from it is
//! in flight.

use crate::failpoints;
use crate::metrics::Verb;
use crate::protocol::{parse_request, Request, Response};
use crate::server::{handle_request, Shared};
use epoll::{Epoll, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection pipeline cap: while this many queue entries are pending,
/// the connection's read interest is disarmed — backpressure instead of
/// unbounded buffering for a client that floods requests without reading
/// answers.
const MAX_PIPELINED: usize = 64;

/// Transport-layer accounting, reported by `STATS`. At quiescence the
/// request counters balance: `requests_received` = `requests_served` +
/// `queries_shed` + `requests_failed`.
#[derive(Default)]
pub(crate) struct TransportCounters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) requests_received: AtomicU64,
    pub(crate) requests_served: AtomicU64,
    pub(crate) requests_failed: AtomicU64,
    pub(crate) queries_shed: AtomicU64,
    pub(crate) queue_depth_max: AtomicU64,
}

impl TransportCounters {
    /// One JSON object for the `STATS` payload.
    pub(crate) fn render(&self) -> String {
        format!(
            "{{\"connections_accepted\":{},\"connections_rejected\":{},\
             \"connections_closed\":{},\"requests_received\":{},\
             \"requests_served\":{},\"requests_failed\":{},\
             \"queries_shed\":{},\"queue_depth_max\":{}}}",
            self.connections_accepted.load(Ordering::Relaxed),
            self.connections_rejected.load(Ordering::Relaxed),
            self.connections_closed.load(Ordering::Relaxed),
            self.requests_received.load(Ordering::Relaxed),
            self.requests_served.load(Ordering::Relaxed),
            self.requests_failed.load(Ordering::Relaxed),
            self.queries_shed.load(Ordering::Relaxed),
            self.queue_depth_max.load(Ordering::Relaxed),
        )
    }
}

/// One entry in a connection's in-order pipeline.
enum Work {
    /// A parsed request awaiting admission/dispatch.
    Request(Request),
    /// A reply already decided at parse/admission time (parse errors,
    /// oversized-line errors), held in the queue so it leaves the socket
    /// in request order.
    Reply { text: String, close_after: bool },
}

enum Job {
    Handle {
        conn: u64,
        request: Request,
        verb: Verb,
    },
}

enum Outcome {
    Reply(String),
    /// The handler panicked: close the connection without a reply (the
    /// request may have been half-applied; a made-up answer would lie).
    CloseSilently,
}

struct Completion {
    conn: u64,
    outcome: Outcome,
}

/// The bounded job queue between the reactor and the workers.
#[derive(Default)]
struct JobQueue {
    state: Mutex<JobQueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn depth(&self) -> usize {
        self.state.lock().map(|s| s.jobs.len()).unwrap_or(0)
    }

    fn push(&self, job: Job) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.ready.notify_one();
        depth
    }

    /// Blocks until a job is available or the queue is closed (`None`).
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Completed jobs travelling back to the reactor; pushing wakes it.
struct Completions {
    done: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.done
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.done.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

fn worker_loop(shared: &Shared, queue: &JobQueue, completions: &Completions) {
    while let Some(Job::Handle {
        conn,
        request,
        verb,
    }) = queue.pop()
    {
        let outcome = match failpoints::check("reactor.job") {
            Err(error) => Outcome::Reply(Response::Error(error.to_string()).render()),
            Ok(()) => {
                let started = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| handle_request(shared, request))) {
                    Ok(response) => {
                        // Every served request bills exactly one verb, so
                        // the per-verb counts sum to `requests_served` at
                        // quiescence (SHUTDOWN is billed inline by `pump`).
                        shared
                            .latency
                            .record(verb, started.elapsed().as_micros() as u64);
                        Outcome::Reply(response.render())
                    }
                    Err(_) => Outcome::CloseSilently,
                }
            }
        };
        completions.push(Completion { conn, outcome });
    }
}

/// A hashed timer wheel with `granularity` ticks. Entries are
/// `(connection token, intended deadline)`; the reactor validates each
/// fired entry against the connection's *current* deadline, so stale
/// entries are harmless.
struct TimerWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    granularity: Duration,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    fn new(granularity: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..256).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            cursor: 0,
            last_tick: now,
        }
    }

    fn insert(&mut self, now: Instant, token: u64, deadline: Instant) {
        let until = deadline.saturating_duration_since(now);
        let ticks = (until.as_nanos() / self.granularity.as_nanos().max(1)) as usize + 1;
        // Far-future deadlines park one lap ahead and re-insert on fire.
        let ticks = ticks.min(self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((token, deadline));
    }

    /// Advances the wheel to `now`, returning entries whose intended
    /// deadline has passed; unexpired entries (a longer lap, or merely
    /// hashed coarsely) are re-inserted.
    fn expired(&mut self, now: Instant) -> Vec<u64> {
        let elapsed = now.saturating_duration_since(self.last_tick);
        let steps = (elapsed.as_nanos() / self.granularity.as_nanos().max(1)) as usize;
        let steps = steps.min(self.slots.len());
        let mut due = Vec::new();
        let mut reinsert = Vec::new();
        for _ in 0..steps {
            self.cursor = (self.cursor + 1) % self.slots.len();
            for (token, deadline) in std::mem::take(&mut self.slots[self.cursor]) {
                if deadline <= now {
                    due.push(token);
                } else {
                    reinsert.push((token, deadline));
                }
            }
        }
        if steps > 0 {
            self.last_tick += self.granularity * steps as u32;
        }
        for (token, deadline) in reinsert {
            self.insert(now, token, deadline);
        }
        due
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Bytes of `read_buf` already scanned for a newline.
    scanned: usize,
    write_buf: Vec<u8>,
    written: usize,
    pending: VecDeque<Work>,
    /// One request from this connection is in the job queue or a worker.
    busy: bool,
    /// When the current (incomplete) line's first byte arrived — the
    /// slow-loris deadline anchor.
    line_started: Option<Instant>,
    /// When the last write progress happened while data is still pending —
    /// the stalled-reader deadline anchor.
    write_since: Option<Instant>,
    last_activity: Instant,
    /// The deadline last armed in the wheel, to avoid duplicate entries.
    armed: Option<Instant>,
    read_closed: bool,
    /// Close once the write buffer flushes (no further reads).
    closing: bool,
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            busy: false,
            line_started: None,
            write_since: None,
            last_activity: now,
            armed: None,
            read_closed: false,
            closing: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn write_pending(&self) -> bool {
        self.written < self.write_buf.len()
    }

    fn queue_reply(&mut self, text: &str) {
        self.write_buf.extend_from_slice(text.as_bytes());
    }

    /// The connection's earliest enforcement deadline right now.
    fn deadline(&self, config: &crate::server::ServerConfig) -> Option<Instant> {
        let mut earliest: Option<Instant> = None;
        let mut consider = |candidate: Instant| {
            earliest = Some(earliest.map_or(candidate, |current| current.min(candidate)));
        };
        if let Some(started) = self.line_started {
            consider(started + config.line_timeout);
        }
        if let Some(since) = self.write_since {
            consider(since + config.line_timeout);
        }
        if let Some(idle) = config.idle_timeout {
            let quiescent = !self.busy
                && self.pending.is_empty()
                && !self.write_pending()
                && self.read_buf.is_empty();
            if quiescent {
                consider(self.last_activity + idle);
            }
        }
        earliest
    }
}

struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    waker: Arc<Waker>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    queue: Arc<JobQueue>,
    completions: Arc<Completions>,
    wheel: TimerWheel,
    draining: bool,
}

/// Runs the transport until shutdown completes: accepts, reads, dispatches,
/// flushes, enforces deadlines, drains, joins the workers, and closes the
/// WAL cleanly. Called on a dedicated thread by `LiveServer`.
pub(crate) fn run(shared: Arc<Shared>, listener: TcpListener, waker: Arc<Waker>) {
    let Ok(epoll) = Epoll::new() else {
        return;
    };
    if epoll
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .is_err()
        || epoll.add(waker.fd(), EPOLLIN, TOKEN_WAKER).is_err()
    {
        return;
    }
    let queue = Arc::new(JobQueue::default());
    let completions = Arc::new(Completions {
        done: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });
    let workers: Vec<_> = (0..worker_count(&shared.config))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || worker_loop(&shared, &queue, &completions))
        })
        .collect();
    let now = Instant::now();
    let mut reactor = Reactor {
        wheel: TimerWheel::new(shared.config.poll_interval, now),
        shared,
        epoll,
        waker,
        listener: Some(listener),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        queue: Arc::clone(&queue),
        completions,
        draining: false,
    };
    reactor.event_loop();
    // Every connection is gone; in-flight jobs (for connections that died
    // mid-request) still finish — `close` only stops the blocking pops.
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    // Flush the WAL and mark the shutdown clean. A poisoned engine skips
    // the marker — its mid-ingest state must not be certified clean.
    if let Ok(mut engine) = reactor.shared.engine.lock() {
        let _ = engine.clean_shutdown();
    };
}

fn worker_count(config: &crate::server::ServerConfig) -> usize {
    if config.worker_threads > 0 {
        return config.worker_threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

impl Reactor {
    fn event_loop(&mut self) {
        let mut events = Vec::new();
        loop {
            let _ = self
                .epoll
                .wait(Some(self.shared.config.poll_interval), &mut events);
            let mut accept_ready = false;
            let mut touched: Vec<u64> = Vec::new();
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let readable =
                            event.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0;
                        let writable = event.events & EPOLLOUT != 0;
                        if readable {
                            self.handle_readable(token);
                        }
                        if writable {
                            self.flush(token);
                        }
                        touched.push(token);
                    }
                }
            }
            for completion in self.completions.drain() {
                self.apply_completion(completion, &mut touched);
            }
            if accept_ready && !self.draining {
                let fresh = self.accept_ready();
                touched.extend(fresh);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.enter_drain();
                touched.extend(self.conns.keys().copied());
            }
            touched.sort_unstable();
            touched.dedup();
            for token in touched {
                self.maintain(token);
            }
            let now = Instant::now();
            for token in self.wheel.expired(now) {
                self.fire_deadline(token, now);
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
        }
    }

    /// Accepts until the listener would block, returning the tokens of the
    /// connections admitted (so the caller can run their first upkeep,
    /// arming idle deadlines).
    fn accept_ready(&mut self) -> Vec<u64> {
        let config = self.shared.config.clone();
        let mut fresh = Vec::new();
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return fresh;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    if let Some(bytes) = config.send_buffer_bytes {
                        let _ = epoll::set_send_buffer(stream.as_raw_fd(), bytes);
                    }
                    if self.conns.len() >= config.max_connections {
                        // Reject with the structured overload error; the
                        // write is best-effort (a fresh socket's send
                        // buffer is empty, so it practically always
                        // lands) and the socket closes either way.
                        self.shared
                            .transport
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        let reject = Response::Error(format!(
                            "overloaded retry_ms={}",
                            config.overload_retry_ms
                        ))
                        .render();
                        let _ = (&stream).write(reject.as_bytes());
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        continue;
                    }
                    self.shared
                        .transport
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(token, Conn::new(stream, Instant::now()));
                    fresh.push(token);
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return fresh,
                // Transient accept failures (aborted handshakes, fd
                // pressure): the level-triggered listener registration
                // retries on the next wait.
                Err(_) => return fresh,
            }
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 4096];
        loop {
            if conn.pending.len() >= MAX_PIPELINED || conn.read_closed || conn.closing {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.read_buf.is_empty() {
                        conn.line_started = Some(Instant::now());
                    }
                    conn.last_activity = Instant::now();
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    extract_lines(conn, &self.shared);
                }
                Err(error)
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    break
                }
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    fn apply_completion(&mut self, completion: Completion, touched: &mut Vec<u64>) {
        let transport = &self.shared.transport;
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            // The connection died while its request was in flight; the
            // work still happened and must still balance the books.
            match completion.outcome {
                Outcome::Reply(_) => transport.requests_served.fetch_add(1, Ordering::Relaxed),
                Outcome::CloseSilently => transport.requests_failed.fetch_add(1, Ordering::Relaxed),
            };
            return;
        };
        conn.busy = false;
        match completion.outcome {
            Outcome::Reply(text) => {
                transport.requests_served.fetch_add(1, Ordering::Relaxed);
                conn.queue_reply(&text);
                touched.push(completion.conn);
            }
            Outcome::CloseSilently => {
                transport.requests_failed.fetch_add(1, Ordering::Relaxed);
                self.close_conn(completion.conn);
            }
        }
    }

    /// Advances a connection's pipeline while nothing from it is in
    /// flight: flushes queued replies, admits or sheds requests, and
    /// handles `SHUTDOWN` inline (so it cannot be starved by the very
    /// overload it is meant to end).
    fn pump(&mut self, token: u64) {
        let config = self.shared.config.clone();
        let transport = &self.shared.transport;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.busy && !conn.closing {
            let Some(work) = conn.pending.pop_front() else {
                break;
            };
            match work {
                Work::Reply { text, close_after } => {
                    conn.queue_reply(&text);
                    if close_after {
                        conn.closing = true;
                        drop_pending(conn, transport);
                    }
                }
                Work::Request(request) => {
                    if matches!(request, Request::Shutdown) {
                        // Inline: prompt even when every worker is busy,
                        // and exempt from shedding by design. Billed here
                        // because it never reaches a worker.
                        let started = Instant::now();
                        self.shared.shutdown.store(true, Ordering::SeqCst);
                        transport.requests_served.fetch_add(1, Ordering::Relaxed);
                        conn.queue_reply(&Response::Ok("bye".into()).render());
                        self.shared
                            .latency
                            .record(Verb::Shutdown, started.elapsed().as_micros() as u64);
                        conn.closing = true;
                        drop_pending(conn, transport);
                        break;
                    }
                    if self.draining {
                        transport.requests_failed.fetch_add(1, Ordering::Relaxed);
                        conn.queue_reply(&Response::Error("shutting-down".into()).render());
                        continue;
                    }
                    let exempt = matches!(request, Request::Stats { .. } | Request::Metrics);
                    if !exempt && self.queue.depth() >= config.max_queue_depth {
                        transport.queries_shed.fetch_add(1, Ordering::Relaxed);
                        conn.queue_reply(
                            &Response::Error(format!(
                                "overloaded retry_ms={}",
                                config.overload_retry_ms
                            ))
                            .render(),
                        );
                        continue;
                    }
                    let verb = Verb::of(&request);
                    conn.busy = true;
                    let depth = self.queue.push(Job::Handle {
                        conn: token,
                        request,
                        verb,
                    });
                    transport
                        .queue_depth_max
                        .fetch_max(depth as u64, Ordering::Relaxed);
                    break;
                }
            }
        }
        if self.draining && !conn.busy && conn.pending.is_empty() {
            conn.closing = true;
        }
    }

    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.write_pending() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.written += n;
                    let now = Instant::now();
                    conn.last_activity = now;
                    conn.write_since = Some(now);
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if !conn.write_pending() {
            conn.write_buf.clear();
            conn.written = 0;
            conn.write_since = None;
        } else if conn.write_since.is_none() {
            conn.write_since = Some(Instant::now());
        }
    }

    /// Post-activity upkeep for one connection: pump, flush, close if
    /// finished, refresh epoll interest, re-arm its deadline.
    fn maintain(&mut self, token: u64) {
        // Backpressure release: lines buffered while the pipeline was at
        // its cap extract now that the pump may have made room.
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.read_closed
                && !conn.closing
                && conn.pending.len() < MAX_PIPELINED
                && !conn.read_buf.is_empty()
            {
                extract_lines(conn, &self.shared);
            }
        }
        self.pump(token);
        self.flush(token);
        let config = self.shared.config.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let finished = (conn.closing || conn.read_closed)
            && !conn.busy
            && conn.pending.is_empty()
            && !conn.write_pending();
        if finished {
            // Any unterminated partial line is discarded unanswered.
            self.close_conn(token);
            return;
        }
        let mut interest = 0;
        if !conn.read_closed && !conn.closing && conn.pending.len() < MAX_PIPELINED {
            interest |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.write_pending() {
            interest |= EPOLLOUT;
        }
        if interest != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), interest, token)
                .is_ok()
        {
            conn.interest = interest;
        }
        let deadline = conn.deadline(&config);
        if deadline != conn.armed {
            conn.armed = deadline;
            if let Some(deadline) = deadline {
                self.wheel.insert(Instant::now(), token, deadline);
            }
        }
    }

    /// A wheel entry fired: act only if the connection's *current*
    /// deadline really has passed; otherwise re-arm at the real one.
    fn fire_deadline(&mut self, token: u64, now: Instant) {
        let config = self.shared.config.clone();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.deadline(&config) {
            Some(deadline) if deadline <= now => {
                // Slow loris, stalled reader, or idle cutoff: the
                // connection is cut without a reply, like the blocking
                // transport before it.
                self.close_conn(token);
            }
            Some(deadline) => {
                conn.armed = Some(deadline);
                self.wheel.insert(now, token, deadline);
            }
            None => conn.armed = None,
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        let transport = &self.shared.transport;
        transport.connections_closed.fetch_add(1, Ordering::Relaxed);
        // Received-but-unanswered requests fail; queued replies (parse
        // errors and the like) were already accounted at parse time.
        let unanswered = conn
            .pending
            .iter()
            .filter(|work| matches!(work, Work::Request(_)))
            .count();
        transport
            .requests_failed
            .fetch_add(unanswered as u64, Ordering::Relaxed);
    }

    fn enter_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
    }
}

/// Turns buffered bytes into pipeline entries: complete lines parse into
/// requests (or instant error replies), the length cap turns the whole
/// connection into a single terminal error, partial lines stay buffered.
fn extract_lines(conn: &mut Conn, shared: &Shared) {
    let config = &shared.config;
    loop {
        if conn.pending.len() >= MAX_PIPELINED {
            return;
        }
        let Some(pos) = conn.read_buf[conn.scanned..]
            .iter()
            .position(|&b| b == b'\n')
        else {
            conn.scanned = conn.read_buf.len();
            if conn.read_buf.len() > config.max_line_bytes {
                oversized(conn);
            }
            return;
        };
        let pos = conn.scanned + pos;
        if pos > config.max_line_bytes {
            oversized(conn);
            return;
        }
        let line = String::from_utf8_lossy(&conn.read_buf[..pos]).into_owned();
        conn.read_buf.drain(..=pos);
        conn.scanned = 0;
        // The next line's completion deadline starts now (its first bytes
        // are already here) or at its first byte (reader sets it).
        conn.line_started = if conn.read_buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        if line.trim().is_empty() {
            continue;
        }
        shared
            .transport
            .requests_received
            .fetch_add(1, Ordering::Relaxed);
        match parse_request(&line) {
            Ok(request) => conn.pending.push_back(Work::Request(request)),
            Err(message) => {
                shared
                    .transport
                    .requests_failed
                    .fetch_add(1, Ordering::Relaxed);
                conn.pending.push_back(Work::Reply {
                    text: Response::Error(message).render(),
                    close_after: false,
                });
            }
        }
    }
}

/// An oversized line: tell the client why, then drop it — the framing is
/// unrecoverable past the cap. The error still queues behind any earlier
/// requests so it leaves in order.
fn oversized(conn: &mut Conn) {
    conn.pending.push_back(Work::Reply {
        text: Response::Error("line too long".into()).render(),
        close_after: true,
    });
    conn.read_closed = true;
    conn.read_buf.clear();
    conn.scanned = 0;
    conn.line_started = None;
}

/// Rejects every still-queued request on a closing connection.
fn drop_pending(conn: &mut Conn, transport: &TransportCounters) {
    let unanswered = conn
        .pending
        .iter()
        .filter(|work| matches!(work, Work::Request(_)))
        .count();
    transport
        .requests_failed
        .fetch_add(unanswered as u64, Ordering::Relaxed);
    conn.pending.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_due_entries_and_reinserts_future_ones() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), start);
        wheel.insert(start, 1, start + Duration::from_millis(25));
        wheel.insert(start, 2, start + Duration::from_millis(900));

        // 30 ms later: entry 1 is due, entry 2 is not.
        let now = start + Duration::from_millis(30);
        let due = wheel.expired(now);
        assert_eq!(due, vec![1]);

        // Sweep a full second in coarse steps: entry 2 fires exactly once.
        let mut fired = Vec::new();
        for ms in (100..=1200).step_by(100) {
            fired.extend(wheel.expired(start + Duration::from_millis(ms)));
        }
        assert_eq!(fired, vec![2]);
    }

    #[test]
    fn timer_wheel_survives_laps_longer_than_one_rotation() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(1), start);
        // 256 slots × 1 ms = one rotation; this deadline is many laps out.
        wheel.insert(start, 9, start + Duration::from_millis(2000));
        let mut fired = Vec::new();
        for ms in (0..=2200).step_by(50) {
            fired.extend(wheel.expired(start + Duration::from_millis(ms)));
        }
        assert_eq!(fired, vec![9]);
    }

    #[test]
    fn job_queue_closes_cleanly() {
        let queue = Arc::new(JobQueue::default());
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop().is_none())
        };
        queue.close();
        assert!(popper.join().unwrap(), "closed queue unblocks poppers");
    }
}
