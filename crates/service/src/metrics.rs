//! Per-verb latency accounting, the slow-query log, and the Prometheus
//! text-exposition rendering behind the `METRICS` verb.
//!
//! Every request the transport *serves* bills exactly one [`Verb`]
//! histogram, so at quiescence the per-verb counts sum to the transport's
//! `requests_served` counter — an invariant the server test-suite asserts.
//! Shed and failed requests are accounted by the transport counters
//! instead; nothing is billed twice.
//!
//! The exposition renderer emits the standard Prometheus text format
//! (`# HELP` / `# TYPE` comments, `name{labels} value` samples, histograms
//! as cumulative `_bucket{le=…}` series plus `_sum` and `_count`), one
//! sample per response line so the count-framed protocol response carries
//! it unmodified.

use crate::histogram::LatencyHistogram;
use crate::protocol::Request;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Which latency histogram a served request bills to — one variant per
/// protocol verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verb {
    Query,
    Fact,
    Batch,
    Explain,
    Profile,
    Validate,
    Stats,
    Metrics,
    Snapshot,
    Shutdown,
}

impl Verb {
    /// Every verb, in the order the STATS `latency` object reports them
    /// (`query` first — existing clients key off that prefix).
    pub(crate) const ALL: [Verb; 10] = [
        Verb::Query,
        Verb::Fact,
        Verb::Batch,
        Verb::Explain,
        Verb::Profile,
        Verb::Validate,
        Verb::Stats,
        Verb::Metrics,
        Verb::Snapshot,
        Verb::Shutdown,
    ];

    /// The verb's wire-level lowercase name (STATS key, metric label).
    pub(crate) fn name(self) -> &'static str {
        match self {
            Verb::Query => "query",
            Verb::Fact => "fact",
            Verb::Batch => "batch",
            Verb::Explain => "explain",
            Verb::Profile => "profile",
            Verb::Validate => "validate",
            Verb::Stats => "stats",
            Verb::Metrics => "metrics",
            Verb::Snapshot => "snapshot",
            Verb::Shutdown => "shutdown",
        }
    }

    /// The verb a parsed request bills to.
    pub(crate) fn of(request: &Request) -> Verb {
        match request {
            Request::Query { .. } => Verb::Query,
            Request::Ingest { batch: false, .. } => Verb::Fact,
            Request::Ingest { batch: true, .. } => Verb::Batch,
            Request::Explain { .. } => Verb::Explain,
            Request::Profile { .. } => Verb::Profile,
            Request::Validate { .. } => Verb::Validate,
            Request::Stats { .. } => Verb::Stats,
            Request::Metrics => Verb::Metrics,
            Request::Snapshot => Verb::Snapshot,
            Request::Shutdown => Verb::Shutdown,
        }
    }
}

/// One latency histogram per protocol verb.
#[derive(Default)]
pub(crate) struct VerbLatencies {
    histograms: [LatencyHistogram; Verb::ALL.len()],
}

impl VerbLatencies {
    pub(crate) fn get(&self, verb: Verb) -> &LatencyHistogram {
        &self.histograms[verb as usize]
    }

    pub(crate) fn record(&self, verb: Verb, micros: u64) {
        self.get(verb).record(micros);
    }

    /// Sum of all per-verb observation counts — equals the transport's
    /// `requests_served` once quiescent (asserted by the server tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn total_count(&self) -> u64 {
        self.histograms.iter().map(|h| h.count()).sum()
    }

    /// The STATS `latency` JSON object, one sub-object per verb in
    /// [`Verb::ALL`] order.
    pub(crate) fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, verb) in Verb::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", verb.name(), self.get(*verb).render()));
        }
        out.push('}');
        out
    }
}

/// How many slow-query records the bounded ring retains; the oldest record
/// is evicted when a new one arrives at capacity.
pub(crate) const SLOW_LOG_CAPACITY: usize = 64;

/// One slow query: what ran, how long it took, and a compact profile
/// summary (the `PROFILE` totals line, not the per-round breakdown).
#[derive(Debug, Clone)]
pub(crate) struct SlowQueryRecord {
    /// End-to-end handler wall time, in microseconds.
    pub(crate) wall_micros: u64,
    /// `query` or `profile` — which verb ran it.
    pub(crate) verb: &'static str,
    /// The query's surface syntax.
    pub(crate) query: String,
    /// `key=value` profile summary (path, cache behaviour, counters).
    pub(crate) summary: String,
}

impl SlowQueryRecord {
    fn render(&self) -> String {
        format!(
            "wall_micros={} verb={} {} query={}",
            self.wall_micros, self.verb, self.summary, self.query
        )
    }
}

/// A bounded ring of recent slow queries, written by the request handler
/// whenever a query's wall time crosses
/// [`ServerConfig::slow_query_micros`](crate::server::ServerConfig::slow_query_micros)
/// and read back by `STATS SLOW=<n>`.
#[derive(Default)]
pub(crate) struct SlowQueryLog {
    ring: Mutex<VecDeque<SlowQueryRecord>>,
}

impl SlowQueryLog {
    pub(crate) fn push(&self, record: SlowQueryRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Up to `n` most recent records, newest first, rendered one per line.
    pub(crate) fn recent(&self, n: usize) -> Vec<String> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().rev().take(n).map(|r| r.render()).collect()
    }

    /// Number of records currently retained (bounded by the capacity).
    pub(crate) fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// Appends a `# HELP` / `# TYPE` / sample triple for one counter.
pub(crate) fn counter(lines: &mut Vec<String>, name: &str, help: &str, value: u64) {
    lines.push(format!("# HELP {name} {help}"));
    lines.push(format!("# TYPE {name} counter"));
    lines.push(format!("{name} {value}"));
}

/// Appends a `# HELP` / `# TYPE` / sample triple for one gauge.
pub(crate) fn gauge(lines: &mut Vec<String>, name: &str, help: &str, value: u64) {
    lines.push(format!("# HELP {name} {help}"));
    lines.push(format!("# TYPE {name} gauge"));
    lines.push(format!("{name} {value}"));
}

/// Appends the per-verb request-latency histogram family: cumulative
/// `_bucket{verb=…,le=…}` series (only buckets with observations, plus the
/// mandatory `+Inf`), `_sum` and `_count` per verb.
pub(crate) fn latency_family(lines: &mut Vec<String>, latencies: &VerbLatencies) {
    let name = "vadalog_request_duration_micros";
    lines.push(format!(
        "# HELP {name} Wall time of served requests, by verb, in microseconds."
    ));
    lines.push(format!("# TYPE {name} histogram"));
    for verb in Verb::ALL {
        let histogram = latencies.get(verb);
        let label = verb.name();
        for (upper_edge, cumulative) in histogram.cumulative_buckets() {
            lines.push(format!(
                "{name}_bucket{{verb=\"{label}\",le=\"{upper_edge}\"}} {cumulative}"
            ));
        }
        lines.push(format!(
            "{name}_bucket{{verb=\"{label}\",le=\"+Inf\"}} {}",
            histogram.count()
        ));
        lines.push(format!(
            "{name}_sum{{verb=\"{label}\"}} {}",
            histogram.total_micros()
        ));
        lines.push(format!(
            "{name}_count{{verb=\"{label}\"}} {}",
            histogram.count()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_bill_distinct_histograms_and_sum_exactly() {
        let latencies = VerbLatencies::default();
        latencies.record(Verb::Query, 10);
        latencies.record(Verb::Query, 20);
        latencies.record(Verb::Snapshot, 5);
        assert_eq!(latencies.get(Verb::Query).count(), 2);
        assert_eq!(latencies.get(Verb::Snapshot).count(), 1);
        assert_eq!(latencies.get(Verb::Validate).count(), 0);
        assert_eq!(latencies.total_count(), 3);
        let json = latencies.render();
        assert!(json.starts_with("{\"query\":{\"count\":2,"), "{json}");
        assert!(json.contains("\"snapshot\":{\"count\":1,"), "{json}");
        assert!(json.contains("\"shutdown\":{\"count\":0,"), "{json}");
    }

    #[test]
    fn slow_log_is_bounded_and_newest_first() {
        let log = SlowQueryLog::default();
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            log.push(SlowQueryRecord {
                wall_micros: i as u64,
                verb: "query",
                query: format!("?(X) :- t(c{i}, X)."),
                summary: "path=full".into(),
            });
        }
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        let recent = log.recent(2);
        assert_eq!(recent.len(), 2);
        assert!(
            recent[0].starts_with(&format!("wall_micros={} ", SLOW_LOG_CAPACITY + 4)),
            "{recent:?}"
        );
        // The oldest records were evicted.
        let all = log.recent(usize::MAX);
        assert!(all.iter().all(|l| !l.contains("query=?(X) :- t(c0, X).")));
    }

    #[test]
    fn histogram_family_emits_cumulative_monotone_buckets() {
        let latencies = VerbLatencies::default();
        for v in [1u64, 3, 100, 100, 5000] {
            latencies.record(Verb::Query, v);
        }
        let mut lines = Vec::new();
        latency_family(&mut lines, &latencies);
        let buckets: Vec<u64> = lines
            .iter()
            .filter(|l| l.contains("_bucket{verb=\"query\""))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 5, "+Inf bucket carries count");
        assert!(lines
            .iter()
            .any(|l| l == "vadalog_request_duration_micros_count{verb=\"query\"} 5"));
        assert!(lines
            .iter()
            .any(|l| l == "vadalog_request_duration_micros_sum{verb=\"query\"} 5204"));
    }
}
