//! Durable snapshots of the materialised instance.
//!
//! A snapshot is the engine's full state at one epoch — the packed columnar
//! [`Instance`], all cumulative [`DatalogStats`] counters, the epoch, and
//! the last WAL sequence the state covers — serialised to a single
//! checksummed file. Recovery restores the snapshot and replays only the
//! WAL records *after* its sequence, which is what makes recovery faster
//! than re-deriving the materialisation from scratch.
//!
//! # Format
//!
//! `VDSN` magic, `u32` version, fixed-width state header (epoch, last WAL
//! sequence, the stats counters), a snapshot-local string dictionary, then
//! per relation (sorted by predicate name): the name's dictionary index,
//! the arity and the rows as `u32` dictionary references (high bit set =
//! labelled null id). Dictionary indexes are snapshot-local on purpose —
//! the process-wide interner assigns different `u32`s in every process, so
//! nothing position-dependent from the live representation leaks to disk.
//! The file ends with a CRC-32 over everything before it.
//!
//! # Atomicity
//!
//! [`write_snapshot`] writes to a temporary file, fsyncs it, renames it
//! over the target and fsyncs the directory: readers see either the old
//! snapshot or the new one, never a half-written file. A snapshot that
//! fails its checksum on read is an error — unlike a torn WAL tail there
//! is no prefix worth salvaging, and silently starting empty would lose
//! data the caller still holds a log for.

use crate::failpoints;
use crate::wal::crc32;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use vadalog_datalog::DatalogStats;
use vadalog_model::{Instance, NullId, PackedTerm, Predicate, Symbol};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"VDSN";
const SNAPSHOT_VERSION: u32 = 1;
/// High bit of a serialised term: set for labelled nulls, clear for
/// dictionary references.
const NULL_BIT: u32 = 1 << 31;

/// The engine state a snapshot carries.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// The engine epoch at capture time.
    pub epoch: u64,
    /// The last WAL sequence number applied to this state. Recovery skips
    /// WAL records at or below it.
    pub last_seq: u64,
    /// The cumulative statistics counters.
    pub stats: DatalogStats,
    /// The materialised instance (EDB + IDB rows).
    pub instance: Instance,
}

/// Serialises `data` and atomically installs it at `path` (tmp + fsync +
/// rename + directory fsync).
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> io::Result<()> {
    failpoints::check("snapshot.write")?;
    let mut span = vadalog_obs::span("snapshot.write");
    let bytes = encode(data)?;
    if span.active() {
        span.kv("epoch", data.epoch);
        span.kv("bytes", bytes.len());
    }
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."));
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the containing directory.
    File::open(dir)?.sync_data()?;
    Ok(())
}

/// Reads the snapshot at `path`. `Ok(None)` if no snapshot exists;
/// checksum or format violations are hard errors.
pub fn read_snapshot(path: &Path) -> io::Result<Option<SnapshotData>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(error) => return Err(error),
    }
    decode(&bytes).map(Some)
}

fn encode(data: &SnapshotData) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&data.epoch.to_le_bytes());
    out.extend_from_slice(&data.last_seq.to_le_bytes());
    for counter in stats_counters(&data.stats) {
        out.extend_from_slice(&counter.to_le_bytes());
    }

    // Deterministic relation order: sorted by predicate name.
    let mut relations: Vec<_> = data.instance.relations().collect();
    relations.sort_by_key(|rel| rel.predicate().name());

    // Snapshot-local dictionary: every symbol (predicate names included)
    // gets a dense index in first-use order.
    let mut dict: Vec<&str> = Vec::new();
    let mut dict_index: HashMap<Symbol, u32> = HashMap::new();
    let mut intern = |symbol: Symbol, dict: &mut Vec<&str>| -> io::Result<u32> {
        if let Some(&idx) = dict_index.get(&symbol) {
            return Ok(idx);
        }
        let idx = u32::try_from(dict.len())
            .ok()
            .filter(|idx| idx & NULL_BIT == 0)
            .ok_or_else(|| io::Error::other("snapshot dictionary overflow"))?;
        dict.push(symbol.as_str());
        dict_index.insert(symbol, idx);
        Ok(idx)
    };

    // First pass: build the dictionary and the relation bodies.
    let mut body = Vec::with_capacity(4096);
    body.extend_from_slice(&(relations.len() as u32).to_le_bytes());
    for rel in &relations {
        let name_idx = intern(rel.predicate().0, &mut dict)?;
        body.extend_from_slice(&name_idx.to_le_bytes());
        body.extend_from_slice(&(rel.arity() as u32).to_le_bytes());
        body.extend_from_slice(&(rel.row_count() as u64).to_le_bytes());
        for row in rel.rows() {
            for &term in row {
                let encoded = if let Some(symbol) = term.as_const() {
                    intern(symbol, &mut dict)?
                } else if let Some(NullId(id)) = term.as_null() {
                    u32::try_from(id)
                        .ok()
                        .filter(|id| id & NULL_BIT == 0)
                        .map(|id| id | NULL_BIT)
                        .ok_or_else(|| io::Error::other("null id exceeds snapshot range"))?
                } else {
                    return Err(io::Error::other("unpackable term in instance"));
                };
                body.extend_from_slice(&encoded.to_le_bytes());
            }
        }
    }

    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for entry in &dict {
        out.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        out.extend_from_slice(entry.as_bytes());
    }
    out.extend_from_slice(&body);
    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

fn decode(bytes: &[u8]) -> io::Result<SnapshotData> {
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt snapshot: {what}"),
        )
    };
    if bytes.len() < 12 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let trailer_at = bytes.len() - 4;
    let expected = u32::from_le_bytes(bytes[trailer_at..].try_into().unwrap());
    if crc32(&bytes[..trailer_at]) != expected {
        return Err(corrupt("checksum mismatch"));
    }
    let mut body = &bytes[4..trailer_at];
    let version = take_u32(&mut body).ok_or_else(|| corrupt("truncated version"))?;
    if version != SNAPSHOT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported snapshot version {version}"),
        ));
    }
    let epoch = take_u64(&mut body).ok_or_else(|| corrupt("truncated epoch"))?;
    let last_seq = take_u64(&mut body).ok_or_else(|| corrupt("truncated sequence"))?;
    let mut counters = [0u64; STATS_COUNTERS];
    for counter in &mut counters {
        *counter = take_u64(&mut body).ok_or_else(|| corrupt("truncated stats"))?;
    }
    let stats = stats_from_counters(&counters).ok_or_else(|| corrupt("stats overflow"))?;

    let dict_len = take_u32(&mut body).ok_or_else(|| corrupt("truncated dictionary"))? as usize;
    let mut dict: Vec<Symbol> = Vec::with_capacity(dict_len.min(1 << 20));
    for _ in 0..dict_len {
        let len =
            take_u32(&mut body).ok_or_else(|| corrupt("truncated dictionary entry"))? as usize;
        let text =
            take_bytes(&mut body, len).ok_or_else(|| corrupt("truncated dictionary entry"))?;
        let text = std::str::from_utf8(text).map_err(|_| corrupt("non-UTF-8 dictionary entry"))?;
        dict.push(Symbol::new(text));
    }

    let mut instance = Instance::new();
    let mut packed_row: Vec<PackedTerm> = Vec::new();
    let relation_count = take_u32(&mut body).ok_or_else(|| corrupt("truncated relation count"))?;
    for _ in 0..relation_count {
        let name_idx =
            take_u32(&mut body).ok_or_else(|| corrupt("truncated relation name"))? as usize;
        let name = *dict
            .get(name_idx)
            .ok_or_else(|| corrupt("relation name out of range"))?;
        let predicate = Predicate(name);
        let arity = take_u32(&mut body).ok_or_else(|| corrupt("truncated arity"))? as usize;
        let rows = take_u64(&mut body).ok_or_else(|| corrupt("truncated row count"))?;
        for _ in 0..rows {
            packed_row.clear();
            for _ in 0..arity {
                let encoded = take_u32(&mut body).ok_or_else(|| corrupt("truncated row"))?;
                let term = if encoded & NULL_BIT != 0 {
                    PackedTerm::pack_null(NullId((encoded & !NULL_BIT) as u64))
                } else {
                    let symbol = dict
                        .get(encoded as usize)
                        .ok_or_else(|| corrupt("term out of range"))?;
                    PackedTerm::pack_symbol(*symbol)
                };
                packed_row.push(term.ok_or_else(|| corrupt("term beyond packed range"))?);
            }
            instance
                .insert_packed(predicate, &packed_row)
                .map_err(|error| io::Error::other(format!("snapshot restore: {error}")))?;
        }
    }
    if !body.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(SnapshotData {
        epoch,
        last_seq,
        stats,
        instance,
    })
}

/// Number of serialised stats counters; bumping [`DatalogStats`] must bump
/// the snapshot version alongside this array.
const STATS_COUNTERS: usize = 10;

fn stats_counters(stats: &DatalogStats) -> [u64; STATS_COUNTERS] {
    [
        stats.derived_atoms as u64,
        stats.peak_atoms as u64,
        stats.iterations as u64,
        stats.joins_evaluated as u64,
        stats.join_probes,
        stats.composite_probes,
        stats.probe_misses_filtered,
        stats.rows_prededuped,
        stats.strata_skipped as u64,
        stats.rounds_incremental as u64,
    ]
}

fn stats_from_counters(counters: &[u64; STATS_COUNTERS]) -> Option<DatalogStats> {
    Some(DatalogStats {
        derived_atoms: counters[0].try_into().ok()?,
        peak_atoms: counters[1].try_into().ok()?,
        iterations: counters[2].try_into().ok()?,
        joins_evaluated: counters[3].try_into().ok()?,
        join_probes: counters[4],
        composite_probes: counters[5],
        probe_misses_filtered: counters[6],
        rows_prededuped: counters[7],
        strata_skipped: counters[8].try_into().ok()?,
        rounds_incremental: counters[9].try_into().ok()?,
    })
}

fn take_bytes<'a>(body: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if body.len() < n {
        return None;
    }
    let (head, tail) = body.split_at(n);
    *body = tail;
    Some(head)
}

fn take_u32(body: &mut &[u8]) -> Option<u32> {
    take_bytes(body, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

fn take_u64(body: &mut &[u8]) -> Option<u64> {
    take_bytes(body, 8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_datalog::IncrementalEngine;
    use vadalog_model::parser::{parse_fact_list, parse_rules};

    fn temp_snapshot(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vadalog-snap-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snapshot.bin")
    }

    fn materialised_engine() -> IncrementalEngine {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let mut engine = IncrementalEngine::new(program).unwrap();
        engine
            .ingest(&parse_fact_list("edge(a, b). edge(b, c). edge(c, d).").unwrap())
            .unwrap();
        engine
            .ingest(&parse_fact_list("edge(d, e).").unwrap())
            .unwrap();
        engine
    }

    #[test]
    fn snapshots_round_trip_bit_identically() {
        let engine = materialised_engine();
        let path = temp_snapshot("roundtrip");
        let data = SnapshotData {
            epoch: engine.epoch(),
            last_seq: 17,
            stats: *engine.stats(),
            instance: engine.instance().clone(),
        };
        write_snapshot(&path, &data).unwrap();
        let restored = read_snapshot(&path).unwrap().expect("snapshot exists");
        assert_eq!(restored.epoch, 2);
        assert_eq!(restored.last_seq, 17);
        assert_eq!(restored.stats, *engine.stats());
        // Bit-identity including arrival order, not just set equality.
        assert_eq!(
            restored.instance.row_layout(),
            engine.instance().row_layout()
        );
        assert_eq!(restored.instance.len(), engine.instance().len());
    }

    #[test]
    fn a_missing_snapshot_reads_as_none_and_corruption_is_loud() {
        let path = temp_snapshot("corrupt");
        let _ = std::fs::remove_file(&path);
        assert!(read_snapshot(&path).unwrap().is_none());

        let engine = materialised_engine();
        let data = SnapshotData {
            epoch: engine.epoch(),
            last_seq: 0,
            stats: *engine.stats(),
            instance: engine.instance().clone(),
        };
        write_snapshot(&path, &data).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let error = read_snapshot(&path).unwrap_err();
        assert!(error.to_string().contains("checksum"), "{error}");
    }
}
