//! Fault-injection points for the durability layer.
//!
//! A fail point is a named site in the code (`"wal.append"`, `"wal.sync"`,
//! `"snapshot.write"`, `"durable.mid_ingest"`, `"server.lock"`,
//! `"reactor.job"`) that tests can *arm* with an [`Action`]: return an
//! injected I/O error, panic (a stand-in for the process dying at exactly
//! that point), tear a write in half, or stall for a fixed duration (a
//! stand-in for a pathologically slow operation, used to exhaust the
//! admission queue deterministically in overload tests). The sites call
//! [`hit`] and interpret the returned action.
//!
//! The registry only exists in debug builds (`cfg!(debug_assertions)`):
//! release builds const-fold every [`hit`] to [`Action::Off`], so the
//! benchmarked hot paths carry no branch and no lock. Debug/test builds pay
//! one short mutex acquisition per armed-or-not lookup, which is noise next
//! to the file I/O the sites wrap.
//!
//! The registry is process-global, so tests that arm fail points must not
//! run interleaved with each other: take [`exclusive`] for the duration of
//! the test and finish with [`clear_all`] (the guard does not auto-clear).

use std::collections::HashMap;
use std::sync::{LazyLock, Mutex, MutexGuard};

/// What an armed fail point does when its site is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not armed: the site proceeds normally.
    Off,
    /// The site fails with an injected `io::Error`.
    Error,
    /// The site panics — simulating the process dying right there.
    Panic,
    /// Write sites persist only a prefix of the record, then fail —
    /// simulating a crash mid-write (a torn tail).
    TornWrite,
    /// The site sleeps for the given duration, then proceeds normally —
    /// simulating a pathologically slow operation without failing it.
    Stall(std::time::Duration),
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    action: Action,
    /// Hits to let through unharmed before triggering.
    skip: u64,
    /// Disarm after triggering once?
    one_shot: bool,
}

static REGISTRY: LazyLock<Mutex<HashMap<&'static str, Armed>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Serialises fail-point tests: the registry is process-global, so two
/// tests arming sites concurrently would see each other's faults.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Takes the global fail-point test lock. Poison-tolerant: a previous test
/// panicking (often deliberately, via [`Action::Panic`]) must not wedge the
/// rest of the suite.
pub fn exclusive() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn registry() -> MutexGuard<'static, HashMap<&'static str, Armed>> {
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `site` to trigger `action` exactly once, after letting `skip` hits
/// through unharmed. No-op in release builds.
pub fn fail_once(site: &'static str, action: Action, skip: u64) {
    if cfg!(debug_assertions) {
        registry().insert(
            site,
            Armed {
                action,
                skip,
                one_shot: true,
            },
        );
    }
}

/// Arms `site` to trigger `action` on every hit until cleared. No-op in
/// release builds.
pub fn fail_always(site: &'static str, action: Action) {
    if cfg!(debug_assertions) {
        registry().insert(
            site,
            Armed {
                action,
                skip: 0,
                one_shot: false,
            },
        );
    }
}

/// Disarms every fail point.
pub fn clear_all() {
    if cfg!(debug_assertions) {
        registry().clear();
    }
}

/// Reports the action `site` should take right now, consuming one hit of
/// its arming. Always [`Action::Off`] in release builds — the
/// `cfg!(debug_assertions)` test const-folds the whole lookup away.
#[inline]
pub fn hit(site: &'static str) -> Action {
    if cfg!(debug_assertions) {
        registry_hit(site)
    } else {
        Action::Off
    }
}

fn registry_hit(site: &'static str) -> Action {
    let mut reg = registry();
    let Some(armed) = reg.get_mut(site) else {
        return Action::Off;
    };
    if armed.skip > 0 {
        armed.skip -= 1;
        return Action::Off;
    }
    let action = armed.action;
    if armed.one_shot {
        reg.remove(site);
    }
    action
}

/// The standard interpretation of an armed site that can only fail or
/// panic (no torn-write semantics): returns the injected error, panics,
/// sleeps through an armed stall, or lets the caller proceed.
/// [`Action::TornWrite`] at such a site degrades to a plain error.
pub fn check(site: &'static str) -> std::io::Result<()> {
    match hit(site) {
        Action::Off => Ok(()),
        Action::Error | Action::TornWrite => {
            Err(std::io::Error::other(format!("failpoint {site}")))
        }
        Action::Panic => panic!("failpoint {site}"),
        Action::Stall(for_how_long) => {
            std::thread::sleep(for_how_long);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_points_trigger_after_skips_and_disarm_when_one_shot() {
        let _guard = exclusive();
        clear_all();

        fail_once("test.site", Action::Error, 2);
        assert_eq!(hit("test.site"), Action::Off);
        assert_eq!(hit("test.site"), Action::Off);
        assert_eq!(hit("test.site"), Action::Error);
        // One-shot: disarmed after triggering.
        assert_eq!(hit("test.site"), Action::Off);

        fail_always("test.site", Action::TornWrite);
        assert_eq!(hit("test.site"), Action::TornWrite);
        assert_eq!(hit("test.site"), Action::TornWrite);
        clear_all();
        assert_eq!(hit("test.site"), Action::Off);

        assert!(check("test.unarmed").is_ok());
        fail_once("test.site", Action::Error, 0);
        assert!(check("test.site").is_err());
    }
}
