//! The write-ahead log: crash durability for accepted ingest batches.
//!
//! # Format
//!
//! A WAL file is an 8-byte header (`VDWL` magic + `u32` version) followed
//! by length-prefixed, checksummed records:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [seq: u64 LE][kind: u8][body]
//! ```
//!
//! `kind` 1 is an ingest batch (the facts of one `FACT`/`BATCH` request,
//! symbol *names* spelled out — packed `u32` dictionary indexes are
//! process-local and would not survive a restart); `kind` 2 is the
//! clean-shutdown marker. Sequence numbers increase monotonically across
//! the life of a log directory, *including* across [`Wal::reset`]: a
//! snapshot records the last sequence it covers, so recovery can skip
//! records the snapshot already contains if a crash lands between the
//! snapshot rename and the log truncation.
//!
//! # Durability discipline
//!
//! [`Wal::append_batch`] writes and (under [`SyncPolicy::Always`], the
//! default) fsyncs the record **before** the engine applies the batch.
//! If any part of that fails, the partial record is rolled back with
//! `set_len` and the error is surfaced — the engine is never mutated for a
//! batch the log did not durably accept.
//!
//! # Replay tolerance
//!
//! [`replay`] decodes records until the first torn or corrupt one: a
//! truncated tail (crash mid-write) or a checksum mismatch (bit rot) stops
//! the scan, and everything from that point on is *dropped, not fatal* —
//! the log's own length prefix cannot be trusted past a bad record. The
//! report says how many bytes were dropped so the caller can log it and
//! truncate the file back to its valid prefix.

use crate::failpoints::{self, Action};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use vadalog_model::{Atom, NullId, Predicate, Symbol, Term};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"VDWL";
const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// Upper bound on one record's payload — anything larger in a length
/// prefix is treated as corruption rather than honoured as an allocation.
const MAX_PAYLOAD: u32 = 64 << 20;

const KIND_BATCH: u8 = 1;
const KIND_CLEAN_SHUTDOWN: u8 = 2;

/// When appended records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Every appended batch is fsynced before the append returns — the
    /// durability the recovery guarantees assume. The default.
    #[default]
    Always,
    /// Fsync once every `n` appends (and on clean shutdown). A crash can
    /// lose up to `n - 1` acknowledged batches; replay still recovers a
    /// consistent prefix.
    EveryN(u32),
    /// Never fsync explicitly (the OS flushes when it pleases). For
    /// measuring the fsync share of WAL overhead, not for production.
    Never,
}

/// CRC-32 (IEEE 802.3, reflected). Table-driven; the table is computed at
/// compile time so the dependency-free implementation costs nothing at
/// startup.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum guarding records and snapshot files.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An ingest batch, exactly as accepted.
    Batch {
        /// The record's sequence number.
        seq: u64,
        /// The batch's facts, in request order.
        facts: Vec<Atom>,
    },
    /// The clean-shutdown marker (last record of an orderly exit).
    CleanShutdown {
        /// The record's sequence number.
        seq: u64,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Batch { seq, .. } | WalRecord::CleanShutdown { seq } => *seq,
        }
    }
}

/// The result of scanning a WAL file: the valid record prefix and what (if
/// anything) had to be dropped behind it.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded records, in log order.
    pub records: Vec<WalRecord>,
    /// The file offset of the end of the last valid record: the length the
    /// file should be truncated to before appending resumes.
    pub valid_len: u64,
    /// Bytes dropped after the valid prefix (torn tail or corrupt record).
    pub dropped_bytes: u64,
    /// The sequence number the next appended record should carry.
    pub next_seq: u64,
    /// `true` iff the last valid record is the clean-shutdown marker.
    pub clean_shutdown: bool,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Appends since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced: u32,
    next_seq: u64,
    /// Current valid file length (everything at or past it is rollback).
    len: u64,
    records_appended: u64,
    /// Set after a torn write: the on-disk state is unknown, so the handle
    /// refuses further appends (recovery opens a fresh one).
    wedged: bool,
}

impl Wal {
    /// Creates (or truncates) the log at `path` and writes the header.
    pub fn create(path: &Path, policy: SyncPolicy) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            next_seq: 1,
            len: HEADER_LEN,
            records_appended: 0,
            wedged: false,
        })
    }

    /// Opens an existing log for appending after a [`replay`] scan:
    /// truncates the file back to the replay's valid prefix (dropping any
    /// torn tail) and resumes the sequence numbering.
    pub fn open_after_replay(
        path: &Path,
        policy: SyncPolicy,
        replay: &WalReplay,
    ) -> io::Result<Wal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if replay.dropped_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            next_seq: replay.next_seq,
            len: replay.valid_len,
            records_appended: 0,
            wedged: false,
        })
    }

    /// Fast-forwards the sequence counter so the next append gets at least
    /// `next_seq`. Recovery calls this with the snapshot's `last_seq + 1`:
    /// a snapshot can certify sequence numbers beyond anything the
    /// (truncated, possibly empty) log still contains, and re-using those
    /// numbers would make the *next* recovery skip live records as stale.
    pub fn resume_sequence(&mut self, next_seq: u64) {
        self.next_seq = self.next_seq.max(next_seq);
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (not counting replayed ones).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// The log's current (valid) length in bytes.
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// The sequence number of the most recently appended record, or of the
    /// last replayed record if nothing has been appended yet.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends one ingest batch and applies the sync policy. On **any**
    /// failure — injected or real, write or fsync — the partial record is
    /// rolled back so the log never holds a record for a batch the caller
    /// will not apply.
    pub fn append_batch(&mut self, facts: &[Atom]) -> io::Result<u64> {
        let mut span = vadalog_obs::span("wal.append");
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(KIND_BATCH);
        encode_facts(facts, &mut payload)?;
        if span.active() {
            span.kv("seq", seq);
            span.kv("bytes", payload.len());
        }
        self.append_payload(&payload)?;
        self.next_seq = seq + 1;
        self.records_appended += 1;
        Ok(seq)
    }

    /// Appends the clean-shutdown marker and fsyncs unconditionally — the
    /// whole point of the marker is that it is on disk before exit.
    pub fn append_clean_shutdown(&mut self) -> io::Result<()> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(KIND_CLEAN_SHUTDOWN);
        let start = self.len;
        let result = self
            .write_record(&payload)
            .and_then(|()| self.file.sync_data());
        if let Err(error) = result {
            let _ = self.file.set_len(start);
            self.len = start;
            return Err(error);
        }
        self.unsynced = 0;
        self.next_seq = seq + 1;
        Ok(())
    }

    /// Fsyncs any unsynced appends (a no-op under [`SyncPolicy::Always`]).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            let mut span = vadalog_obs::span("wal.fsync");
            if span.active() {
                span.kv("unsynced", self.unsynced);
            }
            failpoints::check("wal.sync")?;
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Truncates the log back to its header after a successful snapshot.
    /// Sequence numbering continues — the snapshot remembers the last
    /// sequence it covers, so a crash between the snapshot landing and this
    /// truncation is recoverable (the stale records are skipped by
    /// sequence, not replayed twice).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.file.sync_data()?;
        self.len = HEADER_LEN;
        self.unsynced = 0;
        Ok(())
    }

    /// Writes one length+crc framed record, honouring the `wal.append`
    /// fail point (including its torn-write action) and rolling back on
    /// failure.
    fn append_payload(&mut self, payload: &[u8]) -> io::Result<()> {
        let start = self.len;
        let result = self.write_record(payload).and_then(|()| match self.policy {
            SyncPolicy::Always => {
                failpoints::check("wal.sync")?;
                self.file.sync_data()
            }
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        });
        if let Err(error) = result {
            if !self.wedged {
                // Best-effort rollback of the partial record; if even that
                // fails, replay's torn-tail tolerance covers the leftover.
                let _ = self.file.set_len(start);
                let _ = self.file.seek(SeekFrom::Start(start));
                self.len = start;
            }
            return Err(error);
        }
        Ok(())
    }

    fn write_record(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.wedged {
            return Err(io::Error::other("WAL wedged by a torn write"));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match failpoints::hit("wal.append") {
            Action::Off => {}
            Action::Stall(for_how_long) => std::thread::sleep(for_how_long),
            Action::Error => return Err(io::Error::other("failpoint wal.append")),
            Action::Panic => panic!("failpoint wal.append"),
            Action::TornWrite => {
                // Persist only half the frame, then fail — exactly the
                // on-disk state a crash mid-write leaves behind. The torn
                // bytes are deliberately *not* rolled back, and the handle
                // wedges: a real crash would not keep appending either.
                self.file.write_all(&frame[..frame.len() / 2])?;
                let _ = self.file.sync_data();
                self.wedged = true;
                return Err(io::Error::other("failpoint wal.append (torn)"));
            }
        }
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }
}

/// Scans the WAL at `path`, returning the valid record prefix (see
/// [`WalReplay`]). A missing file is an empty log; a bad header is an
/// error (the file is not a WAL — silently treating it as empty could
/// discard someone else's data on the next truncation).
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => {}
        Err(error) => return Err(error),
    }
    let mut out = WalReplay {
        records: Vec::new(),
        valid_len: HEADER_LEN.min(bytes.len() as u64),
        dropped_bytes: 0,
        next_seq: 1,
        clean_shutdown: false,
    };
    if bytes.is_empty() {
        out.valid_len = 0;
        return Ok(out);
    }
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a WAL file (bad magic)",
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported WAL version {version}"),
        ));
    }
    let mut offset = HEADER_LEN as usize;
    while offset < bytes.len() {
        let Some(record) = decode_record(&bytes[offset..]) else {
            break; // torn or corrupt: drop the rest
        };
        let (consumed, record) = record;
        out.clean_shutdown = matches!(record, WalRecord::CleanShutdown { .. });
        out.next_seq = record.seq() + 1;
        out.records.push(record);
        offset += consumed;
    }
    out.valid_len = offset as u64;
    out.dropped_bytes = (bytes.len() - offset) as u64;
    Ok(out)
}

/// Decodes one record off the front of `bytes`; `None` on a torn or
/// corrupt record (truncated frame, oversized length prefix, checksum
/// mismatch, or undecodable payload).
fn decode_record(bytes: &[u8]) -> Option<(usize, WalRecord)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return None;
    }
    let expected_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let end = 8usize.checked_add(len as usize)?;
    let payload = bytes.get(8..end)?;
    if crc32(payload) != expected_crc {
        return None;
    }
    if payload.len() < 9 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let record = match payload[8] {
        KIND_BATCH => WalRecord::Batch {
            seq,
            facts: decode_facts(&payload[9..])?,
        },
        KIND_CLEAN_SHUTDOWN => WalRecord::CleanShutdown { seq },
        _ => return None,
    };
    Some((end, record))
}

const TERM_CONST: u8 = 0;
const TERM_NULL: u8 = 1;

/// Encodes a batch body: fact count, then per fact the predicate name, the
/// arity and the terms — constants by *name* (dictionary indexes are
/// process-local), labelled nulls by id. Variables cannot appear (the
/// protocol only accepts ground facts); one slipping through is an
/// encoding error, not silent corruption.
fn encode_facts(facts: &[Atom], out: &mut Vec<u8>) -> io::Result<()> {
    out.extend_from_slice(&(facts.len() as u32).to_le_bytes());
    for fact in facts {
        let name = fact.predicate.name().as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(fact.terms.len() as u16).to_le_bytes());
        for term in &fact.terms {
            match term {
                Term::Const(symbol) => {
                    let text = symbol.as_str().as_bytes();
                    out.push(TERM_CONST);
                    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                    out.extend_from_slice(text);
                }
                Term::Null(NullId(id)) => {
                    out.push(TERM_NULL);
                    out.extend_from_slice(&id.to_le_bytes());
                }
                Term::Var(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "cannot log a non-ground fact",
                    ));
                }
            }
        }
    }
    Ok(())
}

fn decode_facts(mut body: &[u8]) -> Option<Vec<Atom>> {
    let count = read_u32(&mut body)? as usize;
    let mut facts = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        let name_len = read_u16(&mut body)? as usize;
        let name = std::str::from_utf8(read_bytes(&mut body, name_len)?).ok()?;
        let predicate = Predicate::new(name);
        let arity = read_u16(&mut body)? as usize;
        let mut terms = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = read_bytes(&mut body, 1)?[0];
            match tag {
                TERM_CONST => {
                    let len = read_u32(&mut body)? as usize;
                    let text = std::str::from_utf8(read_bytes(&mut body, len)?).ok()?;
                    terms.push(Term::Const(Symbol::new(text)));
                }
                TERM_NULL => {
                    let id = u64::from_le_bytes(read_bytes(&mut body, 8)?.try_into().ok()?);
                    terms.push(Term::Null(NullId(id)));
                }
                _ => return None,
            }
        }
        facts.push(Atom::new(predicate, terms));
    }
    if body.is_empty() {
        Some(facts)
    } else {
        None // trailing garbage inside a checksummed payload: corrupt
    }
}

fn read_bytes<'a>(body: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if body.len() < n {
        return None;
    }
    let (head, tail) = body.split_at(n);
    *body = tail;
    Some(head)
}

fn read_u16(body: &mut &[u8]) -> Option<u16> {
    read_bytes(body, 2).map(|b| u16::from_le_bytes(b.try_into().unwrap()))
}

fn read_u32(body: &mut &[u8]) -> Option<u32> {
    read_bytes(body, 4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_fact_list;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vadalog-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn appended_batches_replay_in_order_with_sequence_numbers() {
        let path = temp_path("roundtrip");
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        let b1 = parse_fact_list("edge(a, b). edge(b, c).").unwrap();
        let b2 = parse_fact_list("link(p, q).").unwrap();
        assert_eq!(wal.append_batch(&b1).unwrap(), 1);
        assert_eq!(wal.append_batch(&b2).unwrap(), 2);
        wal.append_clean_shutdown().unwrap();

        let replay = replay(&path).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], WalRecord::Batch { seq: 1, facts: b1 });
        assert_eq!(replay.records[1], WalRecord::Batch { seq: 2, facts: b2 });
        assert!(replay.clean_shutdown);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.next_seq, 4);
    }

    #[test]
    fn torn_tails_and_corrupt_checksums_drop_the_suffix_not_the_log() {
        let path = temp_path("torn");
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        let facts = parse_fact_list("edge(a, b).").unwrap();
        wal.append_batch(&facts).unwrap();
        wal.append_batch(&facts).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Torn tail: truncate the last record mid-frame.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let torn = replay(&path).unwrap();
        assert_eq!(torn.records.len(), 1, "only the intact record survives");
        assert!(torn.dropped_bytes > 0);
        assert!(!torn.clean_shutdown);

        // Corrupt checksum: flip a byte inside the second record's payload.
        let mut corrupt = full.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let scanned = replay(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert!(scanned.dropped_bytes > 0);

        // Appending resumes after truncating the bad tail.
        let mut wal = Wal::open_after_replay(&path, SyncPolicy::Always, &scanned).unwrap();
        assert_eq!(wal.append_batch(&facts).unwrap(), scanned.next_seq);
        let healed = replay(&path).unwrap();
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.dropped_bytes, 0);
    }

    #[test]
    fn a_missing_log_is_empty_and_a_foreign_file_is_an_error() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let scanned = replay(&path).unwrap();
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.next_seq, 1);

        std::fs::write(&path, b"definitely not a WAL").unwrap();
        assert!(replay(&path).is_err());
    }

    #[test]
    fn failed_appends_roll_back_cleanly() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let path = temp_path("rollback");
        let mut wal = Wal::create(&path, SyncPolicy::Always).unwrap();
        let facts = parse_fact_list("edge(a, b).").unwrap();
        wal.append_batch(&facts).unwrap();

        failpoints::fail_once("wal.append", Action::Error, 0);
        assert!(wal.append_batch(&facts).is_err());
        // The failed record is rolled back: sequence and length unchanged.
        assert_eq!(wal.last_seq(), 1);
        let scanned = replay(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.dropped_bytes, 0);

        // A torn write leaves garbage on disk; the handle wedges (a real
        // crash would not keep appending) and replay drops the torn tail.
        failpoints::fail_once("wal.append", Action::TornWrite, 0);
        assert!(wal.append_batch(&facts).is_err());
        assert!(wal.append_batch(&facts).is_err(), "wedged after torn write");
        let scanned = replay(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert!(scanned.dropped_bytes > 0, "torn bytes dropped at replay");
        failpoints::clear_all();
    }

    #[test]
    fn reset_truncates_but_keeps_sequencing_monotonic() {
        let path = temp_path("reset");
        let mut wal = Wal::create(&path, SyncPolicy::EveryN(8)).unwrap();
        let facts = parse_fact_list("edge(a, b).").unwrap();
        wal.append_batch(&facts).unwrap();
        wal.append_batch(&facts).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 8, "header only after reset");
        let seq = wal.append_batch(&facts).unwrap();
        assert_eq!(seq, 3, "sequence numbering survives the reset");
        wal.sync().unwrap();
        let scanned = replay(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0].seq(), 3);
    }
}
