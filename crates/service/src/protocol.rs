//! The line-oriented request/response protocol (see the [crate docs](crate)
//! for the reference table). Parsing and rendering are transport-free so
//! the same protocol can later sit behind an async listener — and so tests
//! can exercise it without a socket.

use vadalog_datalog::IngestOutcome;
use vadalog_model::parser::{parse_fact_list, parse_query};
use vadalog_model::{Atom, ConjunctiveQuery, Symbol};

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// `FACT <fact>.` or `BATCH <fact>. …` — ingest the facts as one batch.
    Ingest(Vec<Atom>),
    /// `QUERY [TIMEOUT_MS=<n>] [MAX_ROWS=<n>] ?(X, …) :- body.` — answer
    /// a CQ against the published snapshot, optionally bounding its
    /// wall-clock time and answer count (server defaults apply to
    /// unspecified limits).
    Query {
        /// The conjunctive query.
        query: ConjunctiveQuery,
        /// Per-request deadline override, in milliseconds.
        timeout_ms: Option<u64>,
        /// Per-request answer-count cap override.
        max_rows: Option<usize>,
    },
    /// `STATS` — report engine statistics as one JSON line.
    Stats,
    /// `SNAPSHOT` — persist the current engine state and truncate the WAL.
    Snapshot,
    /// `SHUTDOWN` — stop accepting connections.
    Shutdown,
}

/// Parses one request line. Errors are protocol-level strings, rendered to
/// the client as `ERR <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (keyword, rest) = match line.split_once(char::is_whitespace) {
        Some((keyword, rest)) => (keyword, rest.trim()),
        None => (line, ""),
    };
    match keyword.to_ascii_uppercase().as_str() {
        "FACT" | "BATCH" => {
            let facts = parse_fact_list(rest).map_err(|e| e.to_string())?;
            if facts.is_empty() {
                return Err(format!("{} requires at least one fact", keyword.to_ascii_uppercase()));
            }
            if keyword.eq_ignore_ascii_case("FACT") && facts.len() != 1 {
                return Err("FACT takes exactly one fact; use BATCH for several".into());
            }
            Ok(Request::Ingest(facts))
        }
        "QUERY" => {
            let (rest, timeout_ms, max_rows) = parse_query_options(rest)?;
            Ok(Request::Query {
                query: parse_query(rest).map_err(|e| e.to_string())?,
                timeout_ms,
                max_rows,
            })
        }
        "STATS" => Ok(Request::Stats),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty command".into()),
        other => Err(format!(
            "unknown command `{other}` (expected FACT, BATCH, QUERY, STATS, SNAPSHOT or SHUTDOWN)"
        )),
    }
}

/// Strips the optional leading `TIMEOUT_MS=<n>` / `MAX_ROWS=<n>` options
/// off a `QUERY` argument string. Options precede the query text (the
/// query itself contains spaces and periods, so trailing options would be
/// ambiguous); each may appear at most once, in either order.
fn parse_query_options(mut rest: &str) -> Result<(&str, Option<u64>, Option<usize>), String> {
    let mut timeout_ms = None;
    let mut max_rows = None;
    loop {
        let token = rest.split_whitespace().next().unwrap_or("");
        let Some((key, value)) = token.split_once('=') else { break };
        match key.to_ascii_uppercase().as_str() {
            "TIMEOUT_MS" => {
                if timeout_ms.is_some() {
                    return Err("TIMEOUT_MS given twice".into());
                }
                let parsed: u64 =
                    value.parse().map_err(|_| format!("bad TIMEOUT_MS value `{value}`"))?;
                timeout_ms = Some(parsed);
            }
            "MAX_ROWS" => {
                if max_rows.is_some() {
                    return Err("MAX_ROWS given twice".into());
                }
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad MAX_ROWS value `{value}`"))?;
                max_rows = Some(parsed);
            }
            _ => break, // not an option: the query text starts here
        }
        rest = rest[token.len()..].trim_start();
    }
    Ok((rest, timeout_ms, max_rows))
}

/// A protocol response, rendered to one or more `\n`-terminated lines.
#[derive(Debug, Clone)]
pub enum Response {
    /// A single `OK <info>` line.
    Ok(String),
    /// A query result: header line, one line per tuple, `END`.
    Answers {
        /// Epoch of the snapshot the query ran against.
        epoch: u64,
        /// The answer tuples (already in the answer set's sorted order).
        tuples: Vec<Vec<Symbol>>,
    },
    /// A single `ERR <message>` line.
    Error(String),
}

impl Response {
    /// The standard ingest acknowledgement line.
    pub fn ingest(outcome: &IngestOutcome) -> Response {
        Response::Ok(format!(
            "inserted={} duplicate={} derived={} strata_skipped={} rounds={} epoch={}",
            outcome.facts_inserted,
            outcome.facts_duplicate,
            outcome.derived_atoms,
            outcome.strata_skipped,
            outcome.rounds,
            outcome.epoch,
        ))
    }

    /// Renders the response as protocol lines (each `\n`-terminated).
    pub fn render(&self) -> String {
        match self {
            Response::Ok(info) if info.is_empty() => "OK\n".to_string(),
            Response::Ok(info) => format!("OK {}\n", one_line(info)),
            Response::Error(message) => format!("ERR {}\n", one_line(message)),
            Response::Answers { epoch, tuples } => {
                let mut out = format!("OK answers={} epoch={}\n", tuples.len(), epoch);
                for tuple in tuples {
                    let cells: Vec<String> = tuple.iter().map(render_constant).collect();
                    out.push_str(&cells.join(" "));
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
        }
    }
}

/// Collapses embedded newlines so a message can never be mistaken for
/// additional protocol lines.
fn one_line(message: &str) -> String {
    if message.contains('\n') {
        message.replace('\n', " ")
    } else {
        message.to_string()
    }
}

/// Renders one answer constant. Plain identifiers go out verbatim; a
/// constant that would corrupt the line framing — whitespace (the column
/// separator), quotes, backslashes, control characters, or an empty symbol
/// — is quoted with backslash escapes (`\"`, `\\`, `\n`). Clients frame by
/// the header's `answers=<n>` count, so even a tuple rendering as `END`
/// cannot be mistaken for the terminator; quoting only keeps the *columns*
/// of a tuple unambiguous.
fn render_constant(symbol: &Symbol) -> String {
    let name = symbol.to_string();
    let safe = !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || c.is_control() || c == '"' || c == '\\');
    if safe {
        return name;
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_case_insensitively() {
        assert!(matches!(
            parse_request("FACT edge(a, b)."),
            Ok(Request::Ingest(facts)) if facts.len() == 1
        ));
        assert!(matches!(
            parse_request("batch edge(a, b). edge(b, c)."),
            Ok(Request::Ingest(facts)) if facts.len() == 2
        ));
        assert!(matches!(parse_request("  stats  "), Ok(Request::Stats)));
        assert!(matches!(parse_request("SHUTDOWN"), Ok(Request::Shutdown)));
        let q = parse_request("QUERY ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query { query, timeout_ms: None, max_rows: None } if query.output.len() == 1
        ));
        assert!(matches!(parse_request("SNAPSHOT"), Ok(Request::Snapshot)));
    }

    #[test]
    fn query_budget_options_parse_in_any_order() {
        let q = parse_request("QUERY TIMEOUT_MS=250 MAX_ROWS=10 ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query { timeout_ms: Some(250), max_rows: Some(10), .. }
        ));
        let q = parse_request("QUERY max_rows=7 ?(X) :- t(a, X).").unwrap();
        assert!(matches!(q, Request::Query { timeout_ms: None, max_rows: Some(7), .. }));

        assert!(parse_request("QUERY TIMEOUT_MS=abc ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("bad TIMEOUT_MS"));
        assert!(parse_request("QUERY MAX_ROWS=1 MAX_ROWS=2 ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("twice"));
        // A query whose own text merely contains `=` is untouched: options
        // stop at the first non-option token.
        assert!(parse_request("QUERY TIMEOUT_MS=10 ?(X) :- ").is_err());
    }

    #[test]
    fn malformed_requests_report_useful_errors() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("NOPE x").unwrap_err().contains("unknown command"));
        assert!(parse_request("FACT").unwrap_err().contains("at least one fact"));
        assert!(parse_request("FACT edge(a, b). edge(b, c).")
            .unwrap_err()
            .contains("exactly one"));
        // Rules and variables are not facts.
        assert!(parse_request("FACT t(X, Y) :- edge(X, Y).").is_err());
        assert!(parse_request("FACT edge(X, b).").is_err());
        // Parse errors propagate with locations.
        assert!(parse_request("QUERY ?(X) :- ").is_err());
    }

    #[test]
    fn responses_render_as_terminated_lines() {
        assert_eq!(Response::Ok(String::new()).render(), "OK\n");
        assert_eq!(Response::Ok("bye".into()).render(), "OK bye\n");
        assert_eq!(
            Response::Error("parse error at 1:1: nope\nmore".into()).render(),
            "ERR parse error at 1:1: nope more\n"
        );
        let rendered = Response::Answers {
            epoch: 3,
            tuples: vec![
                vec![Symbol::new("a"), Symbol::new("b")],
                vec![Symbol::new("c"), Symbol::new("d")],
            ],
        }
        .render();
        assert_eq!(rendered, "OK answers=2 epoch=3\na b\nc d\nEND\n");
    }

    #[test]
    fn awkward_constants_are_quoted_and_counted() {
        // Constants that would corrupt naive line framing: whitespace (the
        // column separator), quotes, and a tuple rendering exactly as the
        // terminator keyword. The header count keeps the framing sound and
        // quoting keeps the columns unambiguous.
        let rendered = Response::Answers {
            epoch: 1,
            tuples: vec![
                vec![Symbol::new("END")],
                vec![Symbol::new("x.y z"), Symbol::new("plain")],
                vec![Symbol::new("say \"hi\"")],
            ],
        }
        .render();
        assert_eq!(
            rendered,
            "OK answers=3 epoch=1\nEND\n\"x.y z\" plain\n\"say \\\"hi\\\"\"\nEND\n"
        );
    }
}
