//! The line-oriented request/response protocol (see the [crate docs](crate)
//! for the reference table). Parsing and rendering are transport-free so
//! the same protocol can later sit behind an async listener — and so tests
//! can exercise it without a socket.

use vadalog_analysis::{Diagnostic, DiagnosticCode, Severity};
use vadalog_datalog::IngestOutcome;
use vadalog_model::parser::{parse_fact_list, parse_query};
use vadalog_model::{Atom, AtomSpan, ConjunctiveQuery, Predicate, Symbol, Variable};

/// How a `QUERY` should be evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryMode {
    /// Pick the magic (demand-driven) path when the query has at least one
    /// bound intensional atom and the rewrite specialises; fall back to
    /// evaluating against the published full materialisation otherwise.
    /// The default.
    #[default]
    Auto,
    /// Demand the magic path. Still answers (correctly) through the full
    /// materialisation when the rewrite cannot specialise the query —
    /// `MODE=MAGIC` is a preference, not a correctness switch.
    Magic,
    /// Evaluate against the published full materialisation only.
    Full,
}

impl QueryMode {
    /// Parses a `MODE=` value (case-insensitive).
    pub fn parse(value: &str) -> Result<QueryMode, String> {
        match value.to_ascii_uppercase().as_str() {
            "AUTO" => Ok(QueryMode::Auto),
            "MAGIC" => Ok(QueryMode::Magic),
            "FULL" => Ok(QueryMode::Full),
            other => Err(format!(
                "bad MODE value `{other}` (expected MAGIC, FULL or AUTO)"
            )),
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// `FACT <fact>.` or `BATCH <fact>. …` — ingest the facts as one batch.
    Ingest {
        /// The facts to ingest.
        facts: Vec<Atom>,
        /// `true` for `BATCH`, `false` for `FACT` — the verbs share one
        /// ingest path but are metered separately in the per-verb latency
        /// accounting.
        batch: bool,
    },
    /// `QUERY [MODE=<MAGIC|FULL|AUTO>] [TIMEOUT_MS=<n>] [MAX_ROWS=<n>]
    /// ?(X, …) :- body.` — answer a CQ against the published snapshot,
    /// optionally forcing the evaluation mode and bounding wall-clock time
    /// and answer count (server defaults apply to unspecified limits).
    Query {
        /// The conjunctive query.
        query: ConjunctiveQuery,
        /// Per-request deadline override, in milliseconds.
        timeout_ms: Option<u64>,
        /// Per-request answer-count cap override.
        max_rows: Option<usize>,
        /// Evaluation-mode preference (`MODE=`, default `AUTO`).
        mode: QueryMode,
    },
    /// `EXPLAIN [MODE=<MAGIC|FULL|AUTO>] ?(X, …) :- body.` — return the
    /// chosen evaluation plan (adornment, magic-vs-full decision with the
    /// fallback reason, per-atom build/probe order with index kinds and
    /// estimated fan-outs) **without evaluating** the query.
    Explain {
        /// The conjunctive query to explain.
        query: ConjunctiveQuery,
        /// Evaluation-mode preference (`MODE=`, default `AUTO`).
        mode: QueryMode,
    },
    /// `PROFILE [options] ?(X, …) :- body.` — evaluate the query exactly
    /// like `QUERY` (same options) and return a per-phase breakdown
    /// instead of the tuples: wall micros per phase and per
    /// stratum/round, join counters, demanded vs materialised tuples,
    /// cache behaviour and the answer count.
    Profile {
        /// The conjunctive query.
        query: ConjunctiveQuery,
        /// Per-request deadline override, in milliseconds.
        timeout_ms: Option<u64>,
        /// Per-request answer-count cap override.
        max_rows: Option<usize>,
        /// Evaluation-mode preference (`MODE=`, default `AUTO`).
        mode: QueryMode,
    },
    /// `VALIDATE <rules>` — dry-run a candidate program through the
    /// diagnostics pipeline against the serving schema; nothing is loaded.
    Validate {
        /// The candidate program's source text.
        source: String,
    },
    /// `STATS` — report engine statistics as one JSON line — or, with
    /// `SLOW=<n>`, the most recent `n` slow-query log records instead.
    Stats {
        /// `Some(n)`: return up to `n` recent slow-query records rather
        /// than the statistics line.
        slow: Option<usize>,
    },
    /// `METRICS` — report counters, gauges and latency histograms in
    /// Prometheus text exposition format (count-framed like every
    /// multi-line response).
    Metrics,
    /// `SNAPSHOT` — persist the current engine state and truncate the WAL.
    Snapshot,
    /// `SHUTDOWN` — stop accepting connections.
    Shutdown,
}

/// Parses one request line. Errors are protocol-level strings, rendered to
/// the client as `ERR <message>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (keyword, rest) = match line.split_once(char::is_whitespace) {
        Some((keyword, rest)) => (keyword, rest.trim()),
        None => (line, ""),
    };
    match keyword.to_ascii_uppercase().as_str() {
        "FACT" | "BATCH" => {
            let facts = parse_fact_list(rest).map_err(|e| e.to_string())?;
            if facts.is_empty() {
                return Err(format!(
                    "{} requires at least one fact",
                    keyword.to_ascii_uppercase()
                ));
            }
            if keyword.eq_ignore_ascii_case("FACT") && facts.len() != 1 {
                return Err("FACT takes exactly one fact; use BATCH for several".into());
            }
            Ok(Request::Ingest {
                facts,
                batch: keyword.eq_ignore_ascii_case("BATCH"),
            })
        }
        "QUERY" => {
            let (rest, timeout_ms, max_rows, mode) = parse_query_options(rest)?;
            Ok(Request::Query {
                query: parse_query(rest).map_err(|e| e.to_string())?,
                timeout_ms,
                max_rows,
                mode,
            })
        }
        "EXPLAIN" => {
            let (rest, timeout_ms, max_rows, mode) = parse_query_options(rest)?;
            if timeout_ms.is_some() || max_rows.is_some() {
                return Err("EXPLAIN does not evaluate; TIMEOUT_MS/MAX_ROWS do not apply".into());
            }
            Ok(Request::Explain {
                query: parse_query(rest).map_err(|e| e.to_string())?,
                mode,
            })
        }
        "PROFILE" => {
            let (rest, timeout_ms, max_rows, mode) = parse_query_options(rest)?;
            Ok(Request::Profile {
                query: parse_query(rest).map_err(|e| e.to_string())?,
                timeout_ms,
                max_rows,
                mode,
            })
        }
        "VALIDATE" => {
            if rest.is_empty() {
                return Err("VALIDATE requires a candidate program".into());
            }
            Ok(Request::Validate {
                source: rest.to_string(),
            })
        }
        "STATS" => {
            let slow = match rest.split_once('=') {
                None if rest.is_empty() => None,
                Some((key, value)) if key.trim().eq_ignore_ascii_case("SLOW") => Some(
                    value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad SLOW value `{}`", value.trim()))?,
                ),
                _ => return Err(format!("bad STATS option `{rest}` (expected SLOW=<n>)")),
            };
            Ok(Request::Stats { slow })
        }
        "METRICS" => Ok(Request::Metrics),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty command".into()),
        other => Err(format!(
            "unknown command `{other}` (expected FACT, BATCH, QUERY, EXPLAIN, PROFILE, VALIDATE, \
             STATS, METRICS, SNAPSHOT or SHUTDOWN)"
        )),
    }
}

/// Strips the optional leading `MODE=<m>` / `TIMEOUT_MS=<n>` /
/// `MAX_ROWS=<n>` options off a `QUERY` argument string. Options precede
/// the query text (the query itself contains spaces and periods, so
/// trailing options would be ambiguous); each may appear at most once, in
/// any order.
#[allow(clippy::type_complexity)]
fn parse_query_options(
    mut rest: &str,
) -> Result<(&str, Option<u64>, Option<usize>, QueryMode), String> {
    let mut timeout_ms = None;
    let mut max_rows = None;
    let mut mode: Option<QueryMode> = None;
    loop {
        let token = rest.split_whitespace().next().unwrap_or("");
        let Some((key, value)) = token.split_once('=') else {
            break;
        };
        match key.to_ascii_uppercase().as_str() {
            "TIMEOUT_MS" => {
                if timeout_ms.is_some() {
                    return Err("TIMEOUT_MS given twice".into());
                }
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("bad TIMEOUT_MS value `{value}`"))?;
                timeout_ms = Some(parsed);
            }
            "MAX_ROWS" => {
                if max_rows.is_some() {
                    return Err("MAX_ROWS given twice".into());
                }
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("bad MAX_ROWS value `{value}`"))?;
                max_rows = Some(parsed);
            }
            "MODE" => {
                if mode.is_some() {
                    return Err("MODE given twice".into());
                }
                mode = Some(QueryMode::parse(value)?);
            }
            _ => break, // not an option: the query text starts here
        }
        rest = rest[token.len()..].trim_start();
    }
    Ok((rest, timeout_ms, max_rows, mode.unwrap_or_default()))
}

/// A protocol response, rendered to one or more `\n`-terminated lines.
#[derive(Debug, Clone)]
pub enum Response {
    /// A single `OK <info>` line.
    Ok(String),
    /// A query result: header line, one line per tuple, `END`.
    Answers {
        /// Epoch of the snapshot the query ran against.
        epoch: u64,
        /// The answer tuples (already in the answer set's sorted order).
        tuples: Vec<Vec<Symbol>>,
    },
    /// A validation report: header line with counts and the admission
    /// decision, one line per diagnostic, `END`.
    Diagnostics {
        /// The admission decision under the server's policy.
        admissible: bool,
        /// The findings, in pass order.
        diagnostics: Vec<Diagnostic>,
    },
    /// A generic count-framed multi-line response: `OK <label>=<n> [info]`,
    /// `n` payload lines, `END`. Used by `EXPLAIN` (`label=explain`),
    /// `PROFILE` (`profile`), `METRICS` (`metrics`) and `STATS SLOW=`
    /// (`slow`) — clients frame by the header count exactly as they do for
    /// `answers=` / `diagnostics=`.
    Framed {
        /// The header's count key (`explain`, `profile`, `metrics`,
        /// `slow`).
        label: &'static str,
        /// Extra `key=value` text appended to the header line (may be
        /// empty).
        info: String,
        /// The payload lines (rendered one per line, newline-collapsed).
        lines: Vec<String>,
    },
    /// A single `ERR <message>` line.
    Error(String),
}

impl Response {
    /// The standard ingest acknowledgement line.
    pub fn ingest(outcome: &IngestOutcome) -> Response {
        Response::Ok(format!(
            "inserted={} duplicate={} derived={} strata_skipped={} rounds={} epoch={}",
            outcome.facts_inserted,
            outcome.facts_duplicate,
            outcome.derived_atoms,
            outcome.strata_skipped,
            outcome.rounds,
            outcome.epoch,
        ))
    }

    /// Renders the response as protocol lines (each `\n`-terminated).
    pub fn render(&self) -> String {
        match self {
            Response::Ok(info) if info.is_empty() => "OK\n".to_string(),
            Response::Ok(info) => format!("OK {}\n", one_line(info)),
            Response::Error(message) => format!("ERR {}\n", one_line(message)),
            Response::Answers { epoch, tuples } => {
                let mut out = format!("OK answers={} epoch={}\n", tuples.len(), epoch);
                for tuple in tuples {
                    let cells: Vec<String> = tuple.iter().map(render_constant).collect();
                    out.push_str(&cells.join(" "));
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
            Response::Framed { label, info, lines } => {
                let mut out = format!("OK {label}={}", lines.len());
                if !info.is_empty() {
                    out.push(' ');
                    out.push_str(&one_line(info));
                }
                out.push('\n');
                for line in lines {
                    out.push_str(&one_line(line));
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
            Response::Diagnostics {
                admissible,
                diagnostics,
            } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                let warnings = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count();
                let mut out = format!(
                    "OK diagnostics={} errors={errors} warnings={warnings} admissible={admissible}\n",
                    diagnostics.len(),
                );
                for diagnostic in diagnostics {
                    out.push_str(&one_line(&diagnostic.to_string()));
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
        }
    }
}

/// Parses one rendered diagnostic line (`VLG004 error tgd=1 atom=body[0]
/// var=Y pred=t :: message`) back into a [`Diagnostic`] — the inverse of
/// its `Display`, so validation output round-trips over the wire.
pub fn parse_diagnostic_line(line: &str) -> Result<Diagnostic, String> {
    let (head, message) = line
        .split_once(" :: ")
        .ok_or_else(|| format!("diagnostic line without ` :: ` separator: `{line}`"))?;
    let mut tokens = head.split_whitespace();
    let code = tokens
        .next()
        .and_then(DiagnosticCode::parse)
        .ok_or_else(|| format!("bad diagnostic code in `{line}`"))?;
    let severity: Severity = tokens
        .next()
        .ok_or_else(|| format!("missing severity in `{line}`"))?
        .parse()?;
    let mut diagnostic = Diagnostic {
        code,
        severity,
        tgd: None,
        atom: None,
        variable: None,
        predicate: None,
        message: message.to_string(),
    };
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("bad diagnostic field `{token}`"))?;
        match key {
            "tgd" => {
                diagnostic.tgd = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad tgd index `{value}`"))?,
                );
            }
            "atom" => diagnostic.atom = Some(value.parse::<AtomSpan>()?),
            "var" => diagnostic.variable = Some(Variable::new(value)),
            "pred" => diagnostic.predicate = Some(Predicate::new(value)),
            other => return Err(format!("unknown diagnostic field `{other}`")),
        }
    }
    Ok(diagnostic)
}

/// Collapses embedded newlines so a message can never be mistaken for
/// additional protocol lines.
fn one_line(message: &str) -> String {
    if message.contains('\n') {
        message.replace('\n', " ")
    } else {
        message.to_string()
    }
}

/// Renders one answer constant. Plain identifiers go out verbatim; a
/// constant that would corrupt the line framing — whitespace (the column
/// separator), quotes, backslashes, control characters, or an empty symbol
/// — is quoted with backslash escapes (`\"`, `\\`, `\n`). Clients frame by
/// the header's `answers=<n>` count, so even a tuple rendering as `END`
/// cannot be mistaken for the terminator; quoting only keeps the *columns*
/// of a tuple unambiguous.
fn render_constant(symbol: &Symbol) -> String {
    let name = symbol.to_string();
    let safe = !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || c.is_control() || c == '"' || c == '\\');
    if safe {
        return name;
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_case_insensitively() {
        assert!(matches!(
            parse_request("FACT edge(a, b)."),
            Ok(Request::Ingest { facts, batch: false }) if facts.len() == 1
        ));
        assert!(matches!(
            parse_request("batch edge(a, b). edge(b, c)."),
            Ok(Request::Ingest { facts, batch: true }) if facts.len() == 2
        ));
        assert!(matches!(
            parse_request("  stats  "),
            Ok(Request::Stats { slow: None })
        ));
        assert!(matches!(parse_request("metrics"), Ok(Request::Metrics)));
        assert!(matches!(parse_request("SHUTDOWN"), Ok(Request::Shutdown)));
        let q = parse_request("QUERY ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query {
                query,
                timeout_ms: None,
                max_rows: None,
                mode: QueryMode::Auto,
            } if query.output.len() == 1
        ));
        assert!(matches!(parse_request("SNAPSHOT"), Ok(Request::Snapshot)));
    }

    #[test]
    fn query_mode_option_parses_and_rejects_garbage() {
        let q = parse_request("QUERY MODE=MAGIC ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query {
                mode: QueryMode::Magic,
                ..
            }
        ));
        let q = parse_request("QUERY mode=full TIMEOUT_MS=9 ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query {
                mode: QueryMode::Full,
                timeout_ms: Some(9),
                ..
            }
        ));
        assert!(parse_request("QUERY MODE=TURBO ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("bad MODE value `TURBO`"));
        assert!(parse_request("QUERY MODE=MAGIC MODE=FULL ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("MODE given twice"));
    }

    #[test]
    fn query_budget_options_parse_in_any_order() {
        let q = parse_request("QUERY TIMEOUT_MS=250 MAX_ROWS=10 ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query {
                timeout_ms: Some(250),
                max_rows: Some(10),
                ..
            }
        ));
        let q = parse_request("QUERY max_rows=7 ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            q,
            Request::Query {
                timeout_ms: None,
                max_rows: Some(7),
                ..
            }
        ));

        assert!(parse_request("QUERY TIMEOUT_MS=abc ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("bad TIMEOUT_MS"));
        assert!(
            parse_request("QUERY MAX_ROWS=1 MAX_ROWS=2 ?(X) :- t(a, X).")
                .unwrap_err()
                .contains("twice")
        );
        // A query whose own text merely contains `=` is untouched: options
        // stop at the first non-option token.
        assert!(parse_request("QUERY TIMEOUT_MS=10 ?(X) :- ").is_err());
    }

    #[test]
    fn explain_and_profile_requests_parse_like_query() {
        let e = parse_request("EXPLAIN ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            e,
            Request::Explain {
                mode: QueryMode::Auto,
                ..
            }
        ));
        let e = parse_request("explain MODE=FULL ?(X) :- t(a, X).").unwrap();
        assert!(matches!(
            e,
            Request::Explain {
                mode: QueryMode::Full,
                ..
            }
        ));
        // EXPLAIN never evaluates, so evaluation budgets are rejected up
        // front rather than silently ignored.
        assert!(parse_request("EXPLAIN TIMEOUT_MS=10 ?(X) :- t(a, X).")
            .unwrap_err()
            .contains("does not evaluate"));

        let p = parse_request("PROFILE MODE=MAGIC TIMEOUT_MS=250 MAX_ROWS=10 ?(X) :- t(a, X).")
            .unwrap();
        assert!(matches!(
            p,
            Request::Profile {
                mode: QueryMode::Magic,
                timeout_ms: Some(250),
                max_rows: Some(10),
                ..
            }
        ));
        assert!(parse_request("PROFILE ?(X) :- ").is_err());
    }

    #[test]
    fn stats_slow_option_parses_and_rejects_garbage() {
        assert!(matches!(
            parse_request("STATS SLOW=5"),
            Ok(Request::Stats { slow: Some(5) })
        ));
        assert!(matches!(
            parse_request("stats slow=0"),
            Ok(Request::Stats { slow: Some(0) })
        ));
        assert!(parse_request("STATS SLOW=abc")
            .unwrap_err()
            .contains("bad SLOW value"));
        assert!(parse_request("STATS FAST=1")
            .unwrap_err()
            .contains("bad STATS option"));
    }

    #[test]
    fn framed_responses_render_with_count_based_framing() {
        let framed = Response::Framed {
            label: "explain",
            info: "epoch=3 magic=true".into(),
            lines: vec!["adornment t^bf".into(), "plan step=0".into()],
        };
        assert_eq!(
            framed.render(),
            "OK explain=2 epoch=3 magic=true\nadornment t^bf\nplan step=0\nEND\n"
        );
        // An empty payload still frames (header count 0, then END).
        let empty = Response::Framed {
            label: "slow",
            info: String::new(),
            lines: Vec::new(),
        };
        assert_eq!(empty.render(), "OK slow=0\nEND\n");
        // Embedded newlines cannot break the line protocol.
        let tricky = Response::Framed {
            label: "metrics",
            info: String::new(),
            lines: vec!["a\nb".into()],
        };
        assert_eq!(tricky.render(), "OK metrics=1\na b\nEND\n");
    }

    #[test]
    fn malformed_requests_report_useful_errors() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("NOPE x")
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse_request("FACT")
            .unwrap_err()
            .contains("at least one fact"));
        assert!(parse_request("FACT edge(a, b). edge(b, c).")
            .unwrap_err()
            .contains("exactly one"));
        // Rules and variables are not facts.
        assert!(parse_request("FACT t(X, Y) :- edge(X, Y).").is_err());
        assert!(parse_request("FACT edge(X, b).").is_err());
        // Parse errors propagate with locations.
        assert!(parse_request("QUERY ?(X) :- ").is_err());
    }

    #[test]
    fn responses_render_as_terminated_lines() {
        assert_eq!(Response::Ok(String::new()).render(), "OK\n");
        assert_eq!(Response::Ok("bye".into()).render(), "OK bye\n");
        assert_eq!(
            Response::Error("parse error at 1:1: nope\nmore".into()).render(),
            "ERR parse error at 1:1: nope more\n"
        );
        let rendered = Response::Answers {
            epoch: 3,
            tuples: vec![
                vec![Symbol::new("a"), Symbol::new("b")],
                vec![Symbol::new("c"), Symbol::new("d")],
            ],
        }
        .render();
        assert_eq!(rendered, "OK answers=2 epoch=3\na b\nc d\nEND\n");
    }

    #[test]
    fn validate_requests_carry_the_candidate_source() {
        let parsed = parse_request("VALIDATE t(X, Y) :- edge(X, Y).").unwrap();
        assert!(matches!(
            parsed,
            Request::Validate { source } if source == "t(X, Y) :- edge(X, Y)."
        ));
        assert!(parse_request("VALIDATE")
            .unwrap_err()
            .contains("candidate program"));
        assert!(parse_request("NOPE").unwrap_err().contains("VALIDATE"));
    }

    #[test]
    fn diagnostics_render_with_count_based_framing() {
        let (_, report) = vadalog_analysis::analyze_source(
            "r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).",
            &vadalog_analysis::AnalyzerOptions::default(),
        );
        let count = report.diagnostics.len();
        let errors = report.count(Severity::Error);
        let rendered = Response::Diagnostics {
            admissible: false,
            diagnostics: report.diagnostics,
        }
        .render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(
            lines[0].starts_with(&format!("OK diagnostics={count} errors={errors}")),
            "{rendered}"
        );
        assert!(lines[0].ends_with("admissible=false"), "{rendered}");
        assert_eq!(
            lines.len(),
            count + 2,
            "header + n diagnostics + END: {rendered}"
        );
        assert_eq!(*lines.last().unwrap(), "END");
    }

    #[test]
    fn diagnostic_lines_round_trip_through_parse() {
        let (_, report) = vadalog_analysis::analyze_source(
            "r(X, Z) :- p(X).\n t(Y, Y2) :- r(X, Y), r(X2, Y2).\n out(A, B) :- c(A), d(B).",
            &vadalog_analysis::AnalyzerOptions::default(),
        );
        assert!(!report.diagnostics.is_empty());
        for diagnostic in &report.diagnostics {
            let parsed = parse_diagnostic_line(&diagnostic.to_string()).unwrap();
            assert_eq!(&parsed, diagnostic);
        }
        assert!(parse_diagnostic_line("no separator here").is_err());
        assert!(parse_diagnostic_line("VLG999 error :: nope").is_err());
        assert!(parse_diagnostic_line("VLG001 loud :: nope").is_err());
    }

    #[test]
    fn awkward_constants_are_quoted_and_counted() {
        // Constants that would corrupt naive line framing: whitespace (the
        // column separator), quotes, and a tuple rendering exactly as the
        // terminator keyword. The header count keeps the framing sound and
        // quoting keeps the columns unambiguous.
        let rendered = Response::Answers {
            epoch: 1,
            tuples: vec![
                vec![Symbol::new("END")],
                vec![Symbol::new("x.y z"), Symbol::new("plain")],
                vec![Symbol::new("say \"hi\"")],
            ],
        }
        .render();
        assert_eq!(
            rendered,
            "OK answers=3 epoch=1\nEND\n\"x.y z\" plain\n\"say \\\"hi\\\"\"\nEND\n"
        );
    }
}
