//! Fuzz-style transport robustness: malformed, hostile, oversized,
//! non-UTF-8 and half-written inputs must each get a structured `ERR` (or a
//! clean connection close) and must never wedge the server — after every
//! abuse, a fresh connection gets full service.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use vadalog_model::parser::parse_rules;
use vadalog_service::{DurableEngine, IncrementalEngine, LiveServer, ServerConfig};

const CLOSURE: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

fn engine() -> IncrementalEngine {
    IncrementalEngine::new(parse_rules(CLOSURE).unwrap()).unwrap()
}

fn start_default() -> LiveServer {
    LiveServer::start(engine(), "127.0.0.1:0").expect("bind loopback")
}

fn send_line(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

/// Proves the server still gives full service: ingest + query on a fresh
/// connection.
fn assert_serviceable(addr: SocketAddr) {
    let mut probe = TcpStream::connect(addr).unwrap();
    let ok = send_line(&mut probe, "FACT edge(probe_a, probe_b).");
    assert!(
        ok.starts_with("OK inserted=") || ok.starts_with("OK") && ok.contains("duplicate"),
        "server must still ingest: {ok}"
    );
    let answers = send_line(&mut probe, "QUERY ?(X) :- edge(probe_a, X).");
    assert!(
        answers.starts_with("OK answers="),
        "server must still query: {answers}"
    );
}

#[test]
fn malformed_lines_answer_err_without_killing_the_connection() {
    let server = start_default();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();

    let garbage = [
        "NOPE",
        "FACT",
        "BATCH",
        "QUERY",
        "FACT edge(a, b",
        "FACT edge(a b).",
        "BATCH edge(. edge(a,.",
        "QUERY ?(X) :- ",
        "QUERY ?(X) :- nosuch(",
        "QUERY TIMEOUT_MS=abc ?(X) :- t(X, X).",
        "QUERY TIMEOUT_MS=1 TIMEOUT_MS=2 ?(X) :- t(X, X).",
        "QUERY MAX_ROWS= ?(X) :- t(X, X).",
        "\u{7}\u{7}\u{7}",
        "FACT edge(\u{0}, b).",
        "QUERY ?(X) :- t(X, \u{1b}[31m).",
    ];
    for line in garbage {
        let response = send_line(&mut stream, line);
        assert!(
            response.starts_with("ERR "),
            "`{line}` must answer ERR, got: {response}"
        );
    }
    // The same connection still works after every rejection.
    assert!(send_line(&mut stream, "FACT edge(a, b).").starts_with("OK inserted=1"));
    assert_serviceable(addr);

    send_line(&mut stream, "SHUTDOWN");
    drop(stream);
    server.join();
}

#[test]
fn non_utf8_bytes_are_rejected_not_fatal() {
    let server = start_default();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Invalid UTF-8 inside an otherwise plausible request line.
    stream.write_all(b"FACT edge(\xff\xfe\xfa, b).\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.starts_with("ERR "),
        "lossy-decoded garbage must parse-fail: {response}"
    );

    // Pure binary noise on its own line.
    stream
        .write_all(&[0x00, 0x01, 0xc3, 0x28, 0x80, b'\n'])
        .unwrap();
    response.clear();
    reader.read_line(&mut response).unwrap();
    assert!(response.starts_with("ERR "), "{response}");

    assert_serviceable(addr);
    send_line(&mut stream, "SHUTDOWN");
    drop(stream);
    server.join();
}

#[test]
fn oversized_lines_get_a_structured_error_and_a_close() {
    let config = ServerConfig {
        max_line_bytes: 4096,
        ..ServerConfig::default()
    };
    let server = LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
        .expect("bind loopback");
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    // 64 KiB of request with no newline: the server must cut this off at
    // its 4 KiB cap, not buffer it forever. Write errors mid-flood are
    // expected once the server closes its end.
    let flood = vec![b'a'; 64 * 1024];
    for chunk in flood.chunks(1024) {
        if stream.write_all(chunk).is_err() {
            break;
        }
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    // The server answers once with the reason, then closes; depending on
    // timing the RST from discarded unread bytes can surface instead.
    match reader.read_line(&mut response) {
        Ok(0) => {}
        Ok(_) => assert_eq!(response.trim_end(), "ERR line too long"),
        Err(error) => assert!(
            matches!(
                error.kind(),
                ErrorKind::ConnectionReset | ErrorKind::BrokenPipe
            ),
            "unexpected transport error: {error}"
        ),
    }
    // A complete oversized line (newline included) is refused the same way.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut big = format!("FACT edge({}, b).", "x".repeat(8 * 1024));
    big.push('\n');
    let _ = stream.write_all(big.as_bytes());
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    response.clear();
    if reader.read_line(&mut response).unwrap_or(0) > 0 {
        assert_eq!(response.trim_end(), "ERR line too long");
    }

    assert_serviceable(addr);
    server.request_shutdown();
    server.join();
}

#[test]
fn half_written_lines_and_abrupt_disconnects_leave_the_server_healthy() {
    let server = start_default();
    let addr = server.addr();

    // A request cut off mid-line, connection dropped.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"FACT edge(half,").unwrap();
    drop(stream);

    // A request cut off mid-line, connection half-closed (write side shut).
    let stream = TcpStream::connect(addr).unwrap();
    (&stream).write_all(b"BATCH edge(x, y). edge(").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = String::new();
    let _ = BufReader::new(&stream).read_to_string(&mut rest);
    assert!(
        rest.is_empty(),
        "an unterminated line is never answered: {rest:?}"
    );
    drop(stream);

    // Several clients connecting and vanishing without sending anything.
    for _ in 0..8 {
        let _ = TcpStream::connect(addr).unwrap();
    }

    assert_serviceable(addr);
    server.request_shutdown();
    server.join();
}

#[test]
fn slow_loris_partial_lines_are_cut_off_by_the_line_deadline() {
    let config = ServerConfig {
        line_timeout: Duration::from_millis(250),
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let server = LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
        .expect("bind loopback");
    let addr = server.addr();

    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"FACT ed").unwrap();
    // Trickle a byte every 100 ms: each write restarts nothing — the
    // deadline runs from the line's first byte, so the server hangs up.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(100));
        if loris.write_all(b"g").is_err() {
            break;
        }
    }
    let mut buffer = String::new();
    let closed = BufReader::new(loris.try_clone().unwrap()).read_to_string(&mut buffer);
    assert!(
        matches!(closed, Ok(0)) || closed.is_err(),
        "the stalled connection must be closed, got {closed:?} {buffer:?}"
    );

    assert_serviceable(addr);
    server.request_shutdown();
    server.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start_default();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Three requests in one TCP segment, including one malformed in the
    // middle — responses must come back one per request, in order.
    stream
        .write_all(b"FACT edge(p1, p2).\nGIBBERISH\nQUERY ?(X) :- edge(p1, X).\n")
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK inserted=1"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR unknown command"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK answers=1"), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "p2");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "END");

    send_line(&mut stream, "SHUTDOWN");
    drop(stream);
    server.join();
}
