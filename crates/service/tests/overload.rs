//! Admission-control and graceful-degradation coverage for the reactor
//! transport: `ERR overloaded` framing at both shedding points, drain-aware
//! shutdown, stalled-reader cutoffs, and a randomized connection-churn run
//! asserting the STATS transport counters balance
//! (`requests_received` = `requests_served` + `queries_shed` +
//! `requests_failed`) and that shed load never corrupts served state.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vadalog_model::parser::parse_rules;
use vadalog_service::{DurableEngine, IncrementalEngine, LiveServer, ServerConfig};

const CLOSURE: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

fn engine() -> IncrementalEngine {
    IncrementalEngine::new(parse_rules(CLOSURE).unwrap()).unwrap()
}

fn send_line(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    read_line(stream)
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

/// Reads one full counted response (header + `answers=<n>` body lines +
/// `END`), returning all lines.
fn read_counted(reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let mut lines = vec![line.trim_end().to_string()];
    if let Some(rest) = lines[0].strip_prefix("OK answers=") {
        let count: usize = rest.split_whitespace().next().unwrap().parse().unwrap();
        for _ in 0..=count {
            let mut body = String::new();
            reader.read_line(&mut body).unwrap();
            lines.push(body.trim_end().to_string());
        }
    }
    lines
}

/// Extracts an integer field from the STATS JSON (flat, unambiguous keys).
fn stat(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {stats}"));
    stats[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn connection_cap_rejects_with_structured_overload_error() {
    let config = ServerConfig {
        max_connections: 2,
        overload_retry_ms: 7,
        ..ServerConfig::default()
    };
    let server =
        LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // Two admitted connections, held open and proven live.
    let mut first = TcpStream::connect(addr).unwrap();
    let mut second = TcpStream::connect(addr).unwrap();
    assert!(send_line(&mut first, "FACT edge(a, b).").starts_with("OK inserted=1"));
    assert!(send_line(&mut second, "QUERY ?(X, Y) :- t(X, Y).").starts_with("OK answers=1"));

    // The third is told exactly why and with what backoff, then closed.
    let rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut response = String::new();
    let mut reader = BufReader::new(rejected.try_clone().unwrap());
    reader.read_line(&mut response).unwrap();
    assert_eq!(response.trim_end(), "ERR overloaded retry_ms=7");
    let mut rest = Vec::new();
    assert_eq!(
        reader.read_to_end(&mut rest).unwrap(),
        0,
        "rejected connection must be closed after the error"
    );

    // Admitted connections were untouched by the rejection, and the slot
    // freed by a close is reusable.
    drop(second);
    std::thread::sleep(Duration::from_millis(200));
    let mut third = TcpStream::connect(addr).unwrap();
    assert!(send_line(&mut third, "QUERY ?(X, Y) :- t(X, Y).").starts_with("OK answers=1"));

    let stats = send_line(&mut first, "STATS");
    assert_eq!(stat(&stats, "connections_rejected"), 1, "{stats}");
    assert!(
        stats.contains("\"transport\":{\"connections_accepted\":"),
        "{stats}"
    );
    assert!(stats.contains("\"p99_micros\":"), "{stats}");

    send_line(&mut first, "SHUTDOWN");
    server.join();
}

#[cfg(debug_assertions)]
mod injected {
    //! Scenarios that need the fail-point registry (debug builds only):
    //! deterministic queue exhaustion and drain timing via a stalled
    //! worker.

    use super::*;
    use vadalog_service::failpoints::{self, Action};

    #[test]
    fn queue_exhaustion_sheds_but_never_kills_admitted_requests() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let config = ServerConfig {
            worker_threads: 1,
            max_queue_depth: 1,
            overload_retry_ms: 9,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server =
            LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
                .unwrap();
        let addr = server.addr();
        let mut seed = TcpStream::connect(addr).unwrap();
        assert!(send_line(&mut seed, "FACT edge(a, b).").starts_with("OK inserted=1"));

        // Stall the lone worker: the first query occupies it, the second
        // fills the queue, the third finds the queue at its cap.
        failpoints::fail_always("reactor.job", Action::Stall(Duration::from_millis(400)));
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"QUERY ?(X, Y) :- t(X, Y).\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let mut second = TcpStream::connect(addr).unwrap();
        second.write_all(b"QUERY ?(X, Y) :- t(X, Y).\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let mut third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // The shed response is immediate — no waiting behind the stall —
        // and the connection survives to be told again.
        let shed = send_line(&mut third, "QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(shed, "ERR overloaded retry_ms=9");
        failpoints::clear_all();

        // Both admitted queries complete with real answers.
        for stream in [&mut first, &mut second] {
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let lines = read_counted(&mut reader);
            assert_eq!(lines[0], "OK answers=1 epoch=1", "{lines:?}");
        }
        // The shed connection still gets service once pressure is gone.
        let retry = send_line(&mut third, "QUERY ?(X, Y) :- t(X, Y).");
        assert!(retry.starts_with("OK answers=1"), "{retry}");

        let stats = send_line(&mut seed, "STATS");
        assert_eq!(stat(&stats, "queries_shed"), 1, "{stats}");
        assert!(stat(&stats, "queue_depth_max") >= 1, "{stats}");
        assert!(stats.contains("\"degraded\":false"), "{stats}");

        send_line(&mut seed, "SHUTDOWN");
        server.join();
        failpoints::clear_all();
    }

    #[test]
    fn drain_on_shutdown_completes_in_flight_and_rejects_queued() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let config = ServerConfig {
            worker_threads: 1,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server =
            LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config)
                .unwrap();
        let addr = server.addr();
        let mut seed = TcpStream::connect(addr).unwrap();
        assert!(send_line(&mut seed, "FACT edge(a, b).").starts_with("OK inserted=1"));

        // One connection pipelines two queries; the first goes in flight
        // (and stalls), the second waits its turn.
        failpoints::fail_always("reactor.job", Action::Stall(Duration::from_millis(400)));
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.write_all(b"QUERY ?(X, Y) :- t(X, Y).\nQUERY ?(X) :- t(a, X).\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));

        // SHUTDOWN is handled inline by the reactor: prompt even though
        // the only worker is mid-stall.
        let bye = send_line(&mut seed, "SHUTDOWN");
        assert_eq!(bye, "OK bye");

        // Drain semantics on the busy connection, in order: the in-flight
        // query completes with its real answer, the queued one is
        // rejected, then the connection closes.
        busy.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(busy.try_clone().unwrap());
        let inflight = read_counted(&mut reader);
        assert_eq!(inflight[0], "OK answers=1 epoch=1", "{inflight:?}");
        let mut queued = String::new();
        reader.read_line(&mut queued).unwrap();
        assert_eq!(queued.trim_end(), "ERR shutting-down");
        let mut rest = Vec::new();
        assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0, "then EOF");

        server.join();
        failpoints::clear_all();
    }
}

#[test]
fn stalled_reader_is_cut_off_instead_of_pinning_buffers() {
    let config = ServerConfig {
        line_timeout: Duration::from_millis(500),
        poll_interval: Duration::from_millis(20),
        // Bound kernel absorption so the stalled reader backs up into the
        // reactor's user-space write buffer, where the stall is visible.
        send_buffer_bytes: Some(4096),
        ..ServerConfig::default()
    };
    let server =
        LiveServer::start_with(DurableEngine::volatile(engine()), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // A chain whose transitive closure's full dump (5050 tuples, ~45 KiB
    // per query) is far larger than the shrunken socket buffers.
    let mut loader = TcpStream::connect(addr).unwrap();
    let chain: String = (0..100)
        .map(|i| format!("edge(n{i}, n{}). ", i + 1))
        .collect();
    assert!(send_line(&mut loader, &format!("BATCH {chain}")).starts_with("OK inserted=100"));

    // This client asks for everything — four times over — and then never
    // reads: once the clamped buffers fill, the reactor sees no write
    // progress for `line_timeout` and cuts the connection.
    let stalled = TcpStream::connect(addr).unwrap();
    epoll::set_recv_buffer(std::os::fd::AsRawFd::as_raw_fd(&stalled), 4096).unwrap();
    let mut stalled = stalled;
    stalled
        .write_all("QUERY ?(X, Y) :- t(X, Y).\n".repeat(4).as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(3000));

    // Reading now drains what the kernel buffers held, then hits the cut
    // — EOF or a reset, far short of the four full 5k-answer dumps. A
    // read *timeout* here would mean the server never cut the connection.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut drained = Vec::new();
    let result = stalled.read_to_end(&mut drained);
    // Four dumps of 5050 answer lines, at least "nX nY\n" = 6 bytes each.
    let full_dump_floor = 4 * 5050 * 6;
    match result {
        Ok(n) => assert!(
            n < full_dump_floor,
            "connection must be cut before the full dump ({n} bytes arrived)"
        ),
        Err(error) => assert!(
            matches!(error.kind(), ErrorKind::ConnectionReset),
            "expected a cut connection, got: {error}"
        ),
    }

    // The stalled reader cost only itself: full service continues, and
    // the server's books show exactly one connection reaped.
    let probe = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(probe.try_clone().unwrap());
    let mut probe = probe;
    probe.write_all(b"QUERY ?(X) :- t(X, n1).\n").unwrap();
    let frame = read_counted(&mut reader);
    assert_eq!(frame[0], "OK answers=1 epoch=1", "{frame:?}");
    probe.write_all(b"STATS\n").unwrap();
    let mut stats = String::new();
    reader.read_line(&mut stats).unwrap();
    assert_eq!(stat(&stats, "connections_accepted"), 3, "{stats}");
    assert_eq!(stat(&stats, "connections_closed"), 1, "{stats}");

    probe.write_all(b"SHUTDOWN\n").unwrap();
    server.join();
}

#[test]
fn connection_churn_counters_balance_and_durable_state_survives() {
    let dir = std::env::temp_dir().join(format!("vadalog-overload-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = vadalog_service::DurabilityConfig::new(&dir);
    let durable = DurableEngine::create(engine(), durability.clone()).unwrap();
    let config = ServerConfig {
        worker_threads: 2,
        max_queue_depth: 2,
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = LiveServer::start_with(durable, "127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    // Churn: short-lived connections racing facts, queries, garbage, and
    // abrupt disconnects. Sheds and parse failures are expected; crashes
    // and corruption are not.
    let churners: Vec<_> = (0..6)
        .map(|worker: usize| {
            std::thread::spawn(move || {
                for round in 0..5 {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        continue;
                    };
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    let fact = format!("FACT edge(w{worker}, r{round}).\n");
                    stream.write_all(fact.as_bytes()).unwrap();
                    if (worker + round).is_multiple_of(3) {
                        // Fire-and-forget: drop without reading anything.
                        continue;
                    }
                    let _ = read_line(&mut stream);
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    stream
                        .write_all(b"QUERY ?(X) :- t(X, r0).\nGIBBERISH\n")
                        .unwrap();
                    let answers = read_counted(&mut reader);
                    assert!(
                        answers[0].starts_with("OK answers=")
                            || answers[0].starts_with("ERR overloaded retry_ms="),
                        "query must be answered or shed, got {answers:?}"
                    );
                    let mut garbage = String::new();
                    reader.read_line(&mut garbage).unwrap();
                    assert!(garbage.starts_with("ERR "), "{garbage}");
                }
            })
        })
        .collect();
    for churner in churners {
        churner.join().unwrap();
    }
    // Quiescence: in-flight completions and abrupt-disconnect cleanup all
    // settle within a few poll intervals.
    std::thread::sleep(Duration::from_millis(500));

    let mut client = TcpStream::connect(addr).unwrap();
    let stats = send_line(&mut client, "STATS");
    let received = stat(&stats, "requests_received");
    let served = stat(&stats, "requests_served");
    let shed = stat(&stats, "queries_shed");
    let failed = stat(&stats, "requests_failed");
    // This STATS request itself is received but not yet terminal when the
    // payload is rendered — hence the +1.
    assert_eq!(
        received,
        served + shed + failed + 1,
        "counters must balance: {stats}"
    );
    let accepted = stat(&stats, "connections_accepted");
    let closed = stat(&stats, "connections_closed");
    assert_eq!(
        accepted,
        closed + 1,
        "only this connection is open: {stats}"
    );
    assert!(stats.contains("\"degraded\":false"), "{stats}");

    // Shed load never corrupted durable state: the recovered server
    // answers bit-identically to the live one.
    let mut live_reader = BufReader::new(client.try_clone().unwrap());
    client.write_all(b"QUERY ?(X, Y) :- t(X, Y).\n").unwrap();
    let live = read_counted(&mut live_reader);
    assert!(live[0].starts_with("OK answers="), "{live:?}");
    send_line(&mut client, "SHUTDOWN");
    server.join();

    let (recovered, report) =
        LiveServer::recover(engine(), durability, "127.0.0.1:0", ServerConfig::default()).unwrap();
    assert!(report.clean_shutdown, "drain must certify the WAL clean");
    let mut verify = TcpStream::connect(recovered.addr()).unwrap();
    let mut verify_reader = BufReader::new(verify.try_clone().unwrap());
    verify.write_all(b"QUERY ?(X, Y) :- t(X, Y).\n").unwrap();
    let replayed = read_counted(&mut verify_reader);
    assert_eq!(
        replayed[1..],
        live[1..],
        "recovered answers must be bit-identical to the live server's"
    );
    send_line(&mut verify, "SHUTDOWN");
    recovered.join();
    let _ = std::fs::remove_dir_all(&dir);
}
