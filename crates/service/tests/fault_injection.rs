//! Fault-injection harness: kill the durable engine at randomized and
//! adversarially chosen points, recover, and require the recovered state to
//! be **bit-identical** to a reference engine that never crashed (modulo
//! the documented at-least-once window for unacknowledged batches).
//!
//! The failpoint registry only exists in debug builds, so every test that
//! arms a site is `#[cfg(debug_assertions)]`; the randomized kill/recover
//! property needs no failpoints and runs in every profile.

use std::path::PathBuf;
use vadalog_model::parser::{parse_fact_list, parse_rules};
use vadalog_model::Atom;
use vadalog_service::{DurabilityConfig, DurableEngine, IncrementalEngine, SyncPolicy};

const TWO_CLOSURES: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                            s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).";

fn fresh_engine() -> IncrementalEngine {
    IncrementalEngine::new(parse_rules(TWO_CLOSURES).unwrap()).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vadalog-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny deterministic generator (xorshift64*) so the "randomized" kill
/// points are reproducible run to run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A pseudo-random batch over a small node universe, mixing both input
/// relations so both strata keep deriving.
fn random_batch(rng: &mut Rng) -> Vec<Atom> {
    let mut src = String::new();
    for _ in 0..=rng.below(4) {
        let (a, b) = (rng.below(12), rng.below(12));
        let relation = if rng.below(3) == 0 { "link" } else { "edge" };
        src.push_str(&format!("{relation}(n{a}, n{b}). "));
    }
    parse_fact_list(&src).unwrap()
}

fn assert_same_state(recovered: &IncrementalEngine, reference: &IncrementalEngine) {
    assert_eq!(
        recovered.instance().row_layout(),
        reference.instance().row_layout()
    );
    assert_eq!(recovered.stats(), reference.stats());
    assert_eq!(recovered.epoch(), reference.epoch());
}

/// The core property: ingest a random stream, kill the process (drop, no
/// clean shutdown) at random points, recover, keep ingesting — the surviving
/// engine must stay bit-identical to a never-crashed reference. Exercised
/// across sync policies and snapshot cadences.
#[test]
fn randomized_kill_and_recover_is_bit_identical_to_an_uncrashed_engine() {
    for (trial, seed) in [0x9e3779b97f4a7c15u64, 42, 7_777_777]
        .into_iter()
        .enumerate()
    {
        let mut rng = Rng(seed);
        let dir = temp_dir(&format!("randomized-{trial}"));
        let cadence = 1 + rng.below(3);
        let sync = if rng.below(2) == 0 {
            SyncPolicy::Always
        } else {
            SyncPolicy::EveryN(2)
        };
        let config = DurabilityConfig::new(&dir)
            .snapshot_every(cadence)
            .sync(sync);

        let mut reference = fresh_engine();
        let mut durable = Some(DurableEngine::create(fresh_engine(), config.clone()).unwrap());
        for step in 0..24 {
            let batch = random_batch(&mut rng);
            durable.as_mut().unwrap().ingest(&batch).unwrap();
            reference.ingest(&batch).unwrap();
            // Kill roughly every third step: drop without clean shutdown,
            // then recover from disk into a brand-new engine.
            if rng.below(3) == 0 || step == 23 {
                drop(durable.take());
                let (recovered, report) =
                    DurableEngine::recover(fresh_engine(), config.clone()).unwrap();
                assert!(
                    !report.clean_shutdown,
                    "no clean-shutdown marker was written"
                );
                assert_eq!(report.tail_dropped_bytes, 0, "no write was torn");
                assert_same_state(recovered.engine(), &reference);
                durable = Some(recovered);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Recovery after a *clean* shutdown reports it and replays to the same
/// state.
#[test]
fn clean_shutdown_marker_round_trips_through_recovery() {
    let dir = temp_dir("clean-marker");
    let config = DurabilityConfig::new(&dir);
    let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
    let mut reference = fresh_engine();
    let batch = parse_fact_list("edge(a, b). edge(b, c).").unwrap();
    durable.ingest(&batch).unwrap();
    reference.ingest(&batch).unwrap();
    durable.clean_shutdown().unwrap();
    drop(durable);

    let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
    assert!(report.clean_shutdown);
    assert_same_state(recovered.engine(), &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(debug_assertions)]
mod injected {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use vadalog_service::failpoints::{self, Action};
    use vadalog_service::{LiveServer, ServerConfig, ServiceError};

    /// A WAL append failure must roll back cleanly: the engine is untouched,
    /// the caller sees an I/O error, and the log stays appendable.
    #[test]
    fn wal_append_failure_rolls_back_and_ingestion_continues() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let dir = temp_dir("append-fail");
        let config = DurabilityConfig::new(&dir);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();

        let first = parse_fact_list("edge(a, b).").unwrap();
        durable.ingest(&first).unwrap();
        reference.ingest(&first).unwrap();

        failpoints::fail_once("wal.append", Action::Error, 0);
        let doomed = parse_fact_list("edge(b, c).").unwrap();
        assert!(matches!(durable.ingest(&doomed), Err(ServiceError::Io(_))));
        assert_same_state(durable.engine(), &reference);

        // The failed append rolled the file back: the next ingest works and
        // recovery sees a consistent log.
        durable.ingest(&doomed).unwrap();
        reference.ingest(&doomed).unwrap();
        drop(durable);
        let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert_eq!(report.tail_dropped_bytes, 0);
        assert_same_state(recovered.engine(), &reference);
        failpoints::clear_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A write torn halfway through (crash mid-`write(2)`) leaves garbage on
    /// disk; recovery must drop exactly the torn suffix and keep everything
    /// acknowledged before it.
    #[test]
    fn torn_write_drops_only_the_unacknowledged_tail() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let dir = temp_dir("torn");
        let config = DurabilityConfig::new(&dir);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();

        let acked = parse_fact_list("edge(a, b). edge(b, c).").unwrap();
        durable.ingest(&acked).unwrap();
        reference.ingest(&acked).unwrap();

        failpoints::fail_once("wal.append", Action::TornWrite, 0);
        let torn = parse_fact_list("edge(c, d).").unwrap();
        assert!(
            durable.ingest(&torn).is_err(),
            "the torn append must not ack"
        );
        drop(durable);

        let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert!(
            report.tail_dropped_bytes > 0,
            "the torn frame is on disk and gets dropped"
        );
        // The torn batch was never acknowledged, so losing it is correct;
        // everything acknowledged survives.
        assert_same_state(recovered.engine(), &reference);
        failpoints::clear_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Dying *after* the WAL append but *before* the engine applies the
    /// batch (the at-least-once window): recovery replays the logged batch,
    /// converging to the state an uncrashed server would have acked.
    #[test]
    fn panic_between_append_and_apply_replays_the_logged_batch() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let dir = temp_dir("mid-ingest");
        let config = DurabilityConfig::new(&dir);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();

        let batch = parse_fact_list("edge(a, b). edge(b, c).").unwrap();
        failpoints::fail_once("durable.mid_ingest", Action::Panic, 0);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = durable.ingest(&batch);
        }));
        assert!(panicked.is_err(), "the armed failpoint must panic");
        drop(durable);

        // The uncrashed server would have gone on to apply and ack it.
        reference.ingest(&batch).unwrap();
        let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_same_state(recovered.engine(), &reference);
        failpoints::clear_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failing automatic snapshot must not fail the (already durable)
    /// ingest; the WAL keeps growing and a later snapshot catches up.
    #[test]
    fn snapshot_failure_degrades_gracefully_without_losing_ingests() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let dir = temp_dir("snap-fail");
        let config = DurabilityConfig::new(&dir).snapshot_every(1);
        let mut durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let mut reference = fresh_engine();

        failpoints::fail_once("snapshot.write", Action::Error, 0);
        let batch = parse_fact_list("edge(a, b).").unwrap();
        durable.ingest(&batch).unwrap();
        reference.ingest(&batch).unwrap();
        let (_, _, snapshots, failures) = durable.wal_stats();
        assert_eq!(
            (snapshots, failures),
            (1, 1),
            "initial snapshot, then one failure"
        );

        // The next ingest's automatic snapshot succeeds and truncates.
        let second = parse_fact_list("edge(b, c).").unwrap();
        durable.ingest(&second).unwrap();
        reference.ingest(&second).unwrap();
        let (_, _, snapshots, failures) = durable.wal_stats();
        assert_eq!((snapshots, failures), (2, 1));
        drop(durable);

        let (recovered, _) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert_same_state(recovered.engine(), &reference);
        failpoints::clear_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn send_line(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    /// A handler that dies mid-ingest poisons the engine mutex. The server
    /// must contain the damage: writes answer `ERR engine-unavailable`,
    /// queries keep serving the last published snapshot, and restarting the
    /// process recovers every acknowledged batch from the WAL.
    #[test]
    fn poisoned_engine_lock_degrades_writes_but_not_reads() {
        let _guard = failpoints::exclusive();
        failpoints::clear_all();
        let dir = temp_dir("poison");
        let config = DurabilityConfig::new(&dir);
        let durable = DurableEngine::create(fresh_engine(), config.clone()).unwrap();
        let server =
            LiveServer::start_with(durable, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();

        let mut healthy = TcpStream::connect(addr).unwrap();
        assert!(send_line(&mut healthy, "FACT edge(a, b).").starts_with("OK inserted=1"));

        // This handler panics while holding the engine lock; its connection
        // dies without a response.
        failpoints::fail_once("durable.mid_ingest", Action::Panic, 0);
        let mut doomed = TcpStream::connect(addr).unwrap();
        doomed.write_all(b"FACT edge(b, c).\n").unwrap();
        let mut eof = String::new();
        let read = BufReader::new(doomed.try_clone().unwrap()).read_line(&mut eof);
        assert!(
            matches!(read, Ok(0)),
            "the panicked handler closes without replying: {eof:?}"
        );

        // Writes are now refused with a structured error…
        let err = send_line(&mut healthy, "FACT edge(c, d).");
        assert!(err.starts_with("ERR engine-unavailable"), "{err}");
        // …but reads still serve the last published snapshot.
        let answers = send_line(&mut healthy, "QUERY ?(X, Y) :- t(X, Y).");
        assert_eq!(answers, "OK answers=1 epoch=1");

        assert_eq!(send_line(&mut healthy, "SHUTDOWN"), "OK bye");
        drop(healthy);
        server.join();

        // Restart: the acked batch survives, the poisoned one (never acked,
        // but WAL'd) replays — at-least-once, exactly as documented.
        let mut reference = fresh_engine();
        reference
            .ingest(&parse_fact_list("edge(a, b).").unwrap())
            .unwrap();
        reference
            .ingest(&parse_fact_list("edge(b, c).").unwrap())
            .unwrap();
        let (recovered, report) = DurableEngine::recover(fresh_engine(), config).unwrap();
        assert!(
            !report.clean_shutdown,
            "a poisoned engine must not certify a clean shutdown"
        );
        assert_same_state(recovered.engine(), &reference);
        failpoints::clear_all();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
