//! The optimizer: rule-body join ordering and engine configuration.

use vadalog_analysis::predicate_graph::PredicateGraph;
use vadalog_analysis::pwl::check_pwl;
use vadalog_analysis::stratify::{stratify, Stratification};
use vadalog_chase::TerminationPolicy;
use vadalog_model::{Program, Tgd};

/// How rule bodies are ordered before evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinOrdering {
    /// Keep the body atoms exactly as written.
    AsWritten,
    /// Place the (unique, when piece-wise linear) body atom that is mutually
    /// recursive with the head first, then order the remaining atoms by
    /// decreasing number of variables shared with earlier atoms — the
    /// Section 7 heuristic.
    #[default]
    PwlAware,
}

/// Configuration of the engine (the ablation switches of experiment E6).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Join ordering strategy.
    pub join_ordering: JoinOrdering,
    /// Materialise intermediate results at strata boundaries (`true`) or run
    /// a single global fixpoint over all rules (`false`).
    pub materialize_strata: bool,
    /// Termination policy for existential rules.
    pub termination: TerminationPolicy,
    /// Worker threads for per-round trigger detection in the fixpoint
    /// (1 = sequential, 0 = all available parallelism). Trigger application
    /// — satisfaction checks, null invention, inserts — stays sequential,
    /// so results are identical for every thread count.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            join_ordering: JoinOrdering::PwlAware,
            materialize_strata: true,
            termination: TerminationPolicy::MaxNullDepth(6),
            threads: 1,
        }
    }
}

/// A rule with its body reordered by the optimizer.
#[derive(Debug, Clone)]
pub struct OptimizedRule {
    /// Index of the rule in the original program.
    pub original_index: usize,
    /// The rule with the optimised body order.
    pub rule: Tgd,
    /// Position (in the optimised body) of the atom that is mutually
    /// recursive with the head, if the rule has exactly one such atom.
    pub recursive_atom: Option<usize>,
}

/// The optimised program: reordered rules plus the stratification.
#[derive(Debug, Clone)]
pub struct OptimizedProgram {
    /// The optimised rules, in original program order.
    pub rules: Vec<OptimizedRule>,
    /// The stratification of the program.
    pub stratification: Stratification,
}

/// Runs the optimizer over a program.
pub fn optimize(program: &Program, config: &EngineConfig) -> OptimizedProgram {
    let graph = PredicateGraph::new(program);
    let pwl = check_pwl(program, &graph);
    let stratification = stratify(program);

    let rules = program
        .iter()
        .map(|(index, tgd)| {
            let recursive_atoms = &pwl
                .per_tgd
                .iter()
                .find(|t| t.tgd_index == index)
                .expect("pwl report covers every rule")
                .recursive_body_atoms;
            match config.join_ordering {
                JoinOrdering::AsWritten => OptimizedRule {
                    original_index: index,
                    rule: tgd.clone(),
                    recursive_atom: if recursive_atoms.len() == 1 {
                        Some(recursive_atoms[0])
                    } else {
                        None
                    },
                },
                JoinOrdering::PwlAware => order_rule(index, tgd, recursive_atoms),
            }
        })
        .collect();

    OptimizedProgram {
        rules,
        stratification,
    }
}

/// Orders a rule body: the unique recursive atom (if any) first, then greedily
/// by connectivity with the already-placed atoms (so the nested-loop join
/// always has bound variables to use).
fn order_rule(index: usize, tgd: &Tgd, recursive_atoms: &[usize]) -> OptimizedRule {
    let mut remaining: Vec<usize> = (0..tgd.body.len()).collect();
    let mut order: Vec<usize> = Vec::new();

    if recursive_atoms.len() == 1 {
        order.push(recursive_atoms[0]);
        remaining.retain(|&i| i != recursive_atoms[0]);
    }

    while !remaining.is_empty() {
        let bound_vars: std::collections::BTreeSet<_> = order
            .iter()
            .flat_map(|&i| tgd.body[i].variables())
            .collect();
        // Pick the remaining atom sharing the most variables with what is
        // already placed; tie-break on fewer free variables, then on original
        // position for determinism.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let vars = tgd.body[i].variables();
                let shared = vars.iter().filter(|v| bound_vars.contains(v)).count();
                let free = vars.len() - shared;
                (shared, usize::MAX - free, usize::MAX - i)
            })
            .expect("remaining non-empty");
        order.push(remaining.remove(pos));
    }

    let body: Vec<_> = order.iter().map(|&i| tgd.body[i].clone()).collect();
    let recursive_atom = recursive_atoms
        .first()
        .filter(|_| recursive_atoms.len() == 1)
        .and_then(|orig| order.iter().position(|i| i == orig));
    OptimizedRule {
        original_index: index,
        rule: Tgd::new_unchecked(body, tgd.head.clone()),
        recursive_atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::parse_rules;

    #[test]
    fn pwl_aware_ordering_puts_the_recursive_atom_first() {
        let program =
            parse_rules("t(X, Z) :- edge(X, Y), t(Y, Z).\n t(X, Y) :- edge(X, Y).").unwrap();
        let optimized = optimize(&program, &EngineConfig::default());
        let rule0 = &optimized.rules[0];
        assert_eq!(rule0.rule.body[0].predicate.name(), "t");
        assert_eq!(rule0.recursive_atom, Some(0));
        // Non-recursive rules keep a sensible order and no recursive atom.
        assert_eq!(optimized.rules[1].recursive_atom, None);
    }

    #[test]
    fn as_written_ordering_is_preserved() {
        let program = parse_rules("t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let config = EngineConfig {
            join_ordering: JoinOrdering::AsWritten,
            ..EngineConfig::default()
        };
        let optimized = optimize(&program, &config);
        assert_eq!(optimized.rules[0].rule.body[0].predicate.name(), "edge");
        assert_eq!(optimized.rules[0].recursive_atom, Some(1));
    }

    #[test]
    fn connectivity_greedy_order_keeps_joins_connected() {
        // Body: a(X), b(Y), c(X, Y) — after placing a(X), the most connected
        // next atom is c(X, Y), then b(Y).
        let program = parse_rules("h(X, Y) :- a(X), b(Y), c(X, Y).").unwrap();
        let optimized = optimize(&program, &EngineConfig::default());
        let names: Vec<&str> = optimized.rules[0]
            .rule
            .body
            .iter()
            .map(|a| a.predicate.name())
            .collect();
        let pos_c = names.iter().position(|&n| n == "c").unwrap();
        let pos_b = names.iter().position(|&n| n == "b").unwrap();
        assert!(pos_c < pos_b);
    }

    #[test]
    fn example_3_3_rule3_orders_type_first() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- subclassStar(Y, Z), type(X, Y).",
        )
        .unwrap();
        let optimized = optimize(&program, &EngineConfig::default());
        // Rule 3 as written has subclassStar first; the optimizer moves the
        // mutually recursive `type` atom to the front.
        assert_eq!(optimized.rules[2].rule.body[0].predicate.name(), "type");
    }
}
