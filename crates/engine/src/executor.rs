//! The bottom-up executor: stratified evaluation with null invention,
//! ordered joins and termination control.

use crate::optimizer::{optimize, EngineConfig, OptimizedProgram, OptimizedRule};
use std::collections::{BTreeSet, HashMap};
use vadalog_model::{
    Atom, ConjunctiveQuery, Database, Instance, NullId, Program, Substitution, Symbol, Term,
};

/// Counters describing an evaluation run. `join_probes` counts every
/// candidate fact inspected by the nested-loop joins, which is the metric the
/// join-ordering ablation (E6) reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReasonerStats {
    /// Derived atoms (beyond the database).
    pub derived_atoms: usize,
    /// Peak number of materialised atoms.
    pub peak_atoms: usize,
    /// Labelled nulls invented.
    pub nulls_created: usize,
    /// Fixpoint rounds executed (summed over strata).
    pub rounds: usize,
    /// Candidate facts inspected by the join loops.
    pub join_probes: usize,
    /// Triggers suppressed by the termination policy.
    pub suppressed_triggers: usize,
}

/// The result of running the reasoner.
#[derive(Debug, Clone)]
pub struct ReasonerResult {
    /// The materialised instance.
    pub instance: Instance,
    /// Run statistics.
    pub stats: ReasonerStats,
}

impl ReasonerResult {
    /// Evaluates a query over the materialised instance.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` iff the Boolean query holds in the materialised instance.
    pub fn holds(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// The Vadalog-style reasoner for a fixed program and configuration.
#[derive(Debug, Clone)]
pub struct Reasoner {
    config: EngineConfig,
    optimized: OptimizedProgram,
}

impl Reasoner {
    /// Builds a reasoner, running the optimizer once.
    pub fn new(program: &Program, config: EngineConfig) -> Reasoner {
        Reasoner {
            optimized: optimize(program, &config),
            config,
        }
    }

    /// The optimised program (exposed for inspection in tests and benches).
    pub fn optimized(&self) -> &OptimizedProgram {
        &self.optimized
    }

    /// Materialises the program over the database.
    pub fn run(&self, database: &Database) -> ReasonerResult {
        let mut instance = database.as_instance().clone();
        let mut stats = ReasonerStats::default();
        let mut null_counter = 0u64;
        let mut null_depth: HashMap<NullId, usize> = HashMap::new();

        if self.config.materialize_strata {
            for stratum in self.optimized.stratification.strata.clone() {
                let rules: Vec<&OptimizedRule> = self
                    .optimized
                    .rules
                    .iter()
                    .filter(|r| stratum.rules.contains(&r.original_index))
                    .collect();
                self.fixpoint(&rules, &mut instance, &mut stats, &mut null_counter, &mut null_depth);
            }
        } else {
            let rules: Vec<&OptimizedRule> = self.optimized.rules.iter().collect();
            self.fixpoint(&rules, &mut instance, &mut stats, &mut null_counter, &mut null_depth);
        }

        stats.peak_atoms = instance.len();
        ReasonerResult { instance, stats }
    }

    /// Materialises and evaluates a query in one call.
    pub fn answers(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
    ) -> BTreeSet<Vec<Symbol>> {
        self.run(database).answers(query)
    }

    fn fixpoint(
        &self,
        rules: &[&OptimizedRule],
        instance: &mut Instance,
        stats: &mut ReasonerStats,
        null_counter: &mut u64,
        null_depth: &mut HashMap<NullId, usize>,
    ) {
        loop {
            stats.rounds += 1;
            let mut changed = false;
            for optimized_rule in rules {
                let rule = &optimized_rule.rule;
                let bindings = ordered_join(&rule.body, instance, stats);
                for binding in bindings {
                    // Restricted-chase style satisfaction check: skip the
                    // trigger if an extension already satisfies the head.
                    let head_pattern = binding.apply_atoms(&rule.head);
                    if vadalog_model::exists_homomorphism(
                        &head_pattern,
                        instance,
                        &Substitution::new(),
                    ) {
                        continue;
                    }
                    let existentials = rule.existential_variables();
                    if !existentials.is_empty() {
                        let premise_depth = binding
                            .apply_atoms(&rule.body)
                            .iter()
                            .flat_map(|a| a.nulls())
                            .map(|n| null_depth.get(&n).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0);
                        if !self.config.termination.allows_null_depth(premise_depth + 1) {
                            stats.suppressed_triggers += 1;
                            continue;
                        }
                        let mut extended = binding.clone();
                        for z in existentials {
                            let null = NullId(*null_counter);
                            *null_counter += 1;
                            stats.nulls_created += 1;
                            null_depth.insert(null, premise_depth + 1);
                            extended.bind_var(z, Term::Null(null));
                        }
                        for head_atom in &rule.head {
                            let fact = extended.apply_atom(head_atom);
                            if instance.insert(fact).expect("head image is variable-free") {
                                stats.derived_atoms += 1;
                                changed = true;
                            }
                        }
                    } else {
                        for head_atom in &rule.head {
                            let fact = binding.apply_atom(head_atom);
                            if instance.insert(fact).expect("head image is variable-free") {
                                stats.derived_atoms += 1;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// A nested-loop join that follows the given atom order strictly, probing the
/// instance's position index with whatever variables are already bound.
fn ordered_join(
    body: &[Atom],
    instance: &Instance,
    stats: &mut ReasonerStats,
) -> Vec<Substitution> {
    let mut results = Vec::new();
    let mut current = Substitution::new();
    join_rec(body, 0, instance, &mut current, &mut results, stats);
    results
}

fn join_rec(
    body: &[Atom],
    position: usize,
    instance: &Instance,
    current: &mut Substitution,
    results: &mut Vec<Substitution>,
    stats: &mut ReasonerStats,
) {
    if position == body.len() {
        results.push(current.clone());
        return;
    }
    let pattern = current.apply_atom(&body[position]);
    // Probe the index on the first bound argument, if any.
    let candidates: Vec<&Atom> = match pattern
        .terms
        .iter()
        .enumerate()
        .find(|(_, t)| !t.is_var())
    {
        Some((pos, term)) => instance.atoms_matching(pattern.predicate, pos, *term),
        None => instance
            .atoms_with_predicate(pattern.predicate)
            .iter()
            .collect(),
    };
    'candidates: for candidate in candidates {
        stats.join_probes += 1;
        if candidate.arity() != pattern.arity() {
            continue;
        }
        let mut extension = Substitution::new();
        for (p, f) in pattern.terms.iter().zip(candidate.terms.iter()) {
            match p {
                Term::Var(_) => match extension.get(p) {
                    Some(existing) if existing != *f => continue 'candidates,
                    Some(_) => {}
                    None => extension.bind(*p, *f),
                },
                other => {
                    if other != f {
                        continue 'candidates;
                    }
                }
            }
        }
        let saved = current.clone();
        if current.merge_compatible(&extension) {
            join_rec(body, position + 1, instance, current, results, stats);
        }
        *current = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::JoinOrdering;
    use vadalog_chase::TerminationPolicy;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    fn chain(n: usize) -> Database {
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        db(&facts)
    }

    #[test]
    fn transitive_closure_matches_expected_counts() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
        )
        .unwrap();
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&chain(5));
        // Closure of a 5-edge chain: 5+4+3+2+1 = 15 pairs.
        assert_eq!(result.stats.derived_atoms, 15);
        assert!(result.holds(&parse_query("? :- t(n0, n5).").unwrap()));
    }

    #[test]
    fn join_ordering_changes_probe_counts_but_not_answers() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).",
        )
        .unwrap();
        let database = chain(30);
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

        let pwl_aware = Reasoner::new(&program, EngineConfig::default());
        let naive = Reasoner::new(
            &program,
            EngineConfig {
                join_ordering: JoinOrdering::AsWritten,
                ..EngineConfig::default()
            },
        );
        let a = pwl_aware.run(&database);
        let b = naive.run(&database);
        assert_eq!(a.answers(&query), b.answers(&query));
        assert_eq!(a.stats.derived_atoms, b.stats.derived_atoms);
        // Both evaluate the same fixpoint, but the probe counts differ — the
        // point of the ablation (either direction, depending on the data).
        assert_ne!(a.stats.join_probes, b.stats.join_probes);
    }

    #[test]
    fn strata_materialisation_toggle_preserves_answers() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             pair(X, Y) :- t(X, Y), red(Y).",
        )
        .unwrap();
        let database = db("edge(a, b). edge(b, c). red(c).");
        let query = parse_query("?(X) :- pair(X, Y).").unwrap();
        let with = Reasoner::new(&program, EngineConfig::default());
        let without = Reasoner::new(
            &program,
            EngineConfig {
                materialize_strata: false,
                ..EngineConfig::default()
            },
        );
        assert_eq!(with.answers(&database, &query), without.answers(&database, &query));
    }

    #[test]
    fn existential_rules_respect_the_termination_policy() {
        let program = parse_rules("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
        let database = db("p(a).");
        let reasoner = Reasoner::new(
            &program,
            EngineConfig {
                termination: TerminationPolicy::MaxNullDepth(3),
                ..EngineConfig::default()
            },
        );
        let result = reasoner.run(&database);
        assert!(result.stats.nulls_created <= 4);
        assert!(result.stats.suppressed_triggers > 0);
        assert!(result.holds(&parse_query("? :- r(a, Y), r(Y, W).").unwrap()));
    }

    #[test]
    fn owl_example_end_to_end() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let database = db("subclass(student, person). subclass(person, agent).\n\
             type(alice, student). type(alice, enrolled).\n\
             restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).");
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&database);
        assert!(result.holds(&parse_query("? :- type(alice, agent).").unwrap()));
        assert!(result.holds(&parse_query("? :- triple(alice, hasCourse, C).").unwrap()));
        assert!(result.holds(&parse_query("? :- triple(C, courseOf, alice).").unwrap()));
        assert!(result.stats.nulls_created >= 1);
    }

    #[test]
    fn stats_report_rounds_and_peak_atoms() {
        let program = parse_rules("t(X, Y) :- edge(X, Y).").unwrap();
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&chain(3));
        assert_eq!(result.stats.peak_atoms, 6);
        assert!(result.stats.rounds >= 1);
    }
}
