//! The bottom-up executor: stratified evaluation with null invention,
//! ordered joins and termination control.
//!
//! Each fixpoint round separates trigger **detection** (all rule bodies
//! joined against the round's frozen instance — in parallel across
//! [`EngineConfig::threads`] workers, one task per rule) from trigger
//! **application** (satisfaction checks, null invention and inserts, applied
//! sequentially in (rule, trigger) order), so results are identical for
//! every thread count.

use crate::optimizer::{optimize, EngineConfig, OptimizedProgram, OptimizedRule};
use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;
use vadalog_model::parallel;
use vadalog_model::{
    ConjunctiveQuery, Database, Instance, JoinSpec, Matcher, NullId, Program, Symbol, Term,
    Variable,
};

/// Counters describing an evaluation run. `join_probes` counts every
/// candidate fact inspected by the nested-loop joins, which is the metric the
/// join-ordering ablation (E6) reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReasonerStats {
    /// Derived atoms (beyond the database).
    pub derived_atoms: usize,
    /// Peak number of materialised atoms.
    pub peak_atoms: usize,
    /// Labelled nulls invented.
    pub nulls_created: usize,
    /// Fixpoint rounds executed (summed over strata).
    pub rounds: usize,
    /// Candidate facts inspected by the join loops.
    pub join_probes: usize,
    /// Triggers suppressed by the termination policy.
    pub suppressed_triggers: usize,
}

/// The result of running the reasoner.
#[derive(Debug, Clone)]
pub struct ReasonerResult {
    /// The materialised instance.
    pub instance: Instance,
    /// Run statistics.
    pub stats: ReasonerStats,
}

impl ReasonerResult {
    /// Evaluates a query over the materialised instance.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` iff the Boolean query holds in the materialised instance.
    pub fn holds(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// The Vadalog-style reasoner for a fixed program and configuration.
#[derive(Debug, Clone)]
pub struct Reasoner {
    config: EngineConfig,
    optimized: OptimizedProgram,
}

impl Reasoner {
    /// Builds a reasoner, running the optimizer once.
    pub fn new(program: &Program, config: EngineConfig) -> Reasoner {
        Reasoner {
            optimized: optimize(program, &config),
            config,
        }
    }

    /// The optimised program (exposed for inspection in tests and benches).
    pub fn optimized(&self) -> &OptimizedProgram {
        &self.optimized
    }

    /// Materialises the program over the database.
    pub fn run(&self, database: &Database) -> ReasonerResult {
        let mut instance = database.as_instance().clone();
        let mut stats = ReasonerStats::default();
        let mut null_counter = 0u64;
        let mut null_depth: HashMap<NullId, usize> = HashMap::new();

        if self.config.materialize_strata {
            for stratum in self.optimized.stratification.strata.clone() {
                let rules: Vec<&OptimizedRule> = self
                    .optimized
                    .rules
                    .iter()
                    .filter(|r| stratum.rules.contains(&r.original_index))
                    .collect();
                self.fixpoint(
                    &rules,
                    &mut instance,
                    &mut stats,
                    &mut null_counter,
                    &mut null_depth,
                );
            }
        } else {
            let rules: Vec<&OptimizedRule> = self.optimized.rules.iter().collect();
            self.fixpoint(
                &rules,
                &mut instance,
                &mut stats,
                &mut null_counter,
                &mut null_depth,
            );
        }

        stats.peak_atoms = instance.len();
        ReasonerResult { instance, stats }
    }

    /// Materialises and evaluates a query in one call; the query runs
    /// through the sharded CQ kernel on [`EngineConfig::threads`] workers
    /// (answer sets are thread-count independent).
    pub fn answers(&self, database: &Database, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate_with_threads(&self.run(database).instance, self.config.threads)
    }

    fn fixpoint(
        &self,
        rules: &[&OptimizedRule],
        instance: &mut Instance,
        stats: &mut ReasonerStats,
        null_counter: &mut u64,
        null_depth: &mut HashMap<NullId, usize>,
    ) {
        // Compile each rule once per fixpoint: the body join runs in
        // **fixed order** (the optimizer's join ordering is the point of the
        // E6 ablation), the head spec drives the satisfaction check.
        let compiled: Vec<(JoinSpec, JoinSpec, Vec<Variable>)> = rules
            .iter()
            .map(|r| {
                (
                    JoinSpec::compile(&r.rule.body),
                    JoinSpec::compile(&r.rule.head),
                    r.rule.existential_variables().into_iter().collect(),
                )
            })
            .collect();
        let mut head_matchers: Vec<Matcher<'_>> = compiled
            .iter()
            .map(|(_, head_spec, _)| {
                let mut m = Matcher::new(head_spec);
                m.set_limit(1);
                m
            })
            .collect();

        loop {
            stats.rounds += 1;
            let mut changed = false;
            // Trigger detection: one task per rule against the round's
            // frozen instance, run read-only in parallel; triggers apply
            // below in deterministic (rule, trigger) order.
            let round_triggers: Vec<(Vec<Vec<Term>>, u64)> =
                parallel::run_tasks(self.config.threads, rules.len(), |rule_index| {
                    let body_spec = &compiled[rule_index].0;
                    let mut triggers = Vec::new();
                    let mut matcher = Matcher::new(body_spec);
                    matcher.set_fixed_order(true);
                    let run = matcher.for_each(instance, |bindings| {
                        triggers.push(
                            (0..body_spec.num_slots())
                                .map(|s| {
                                    bindings
                                        .get(body_spec.var_of(s))
                                        .expect("every body variable is bound by a full match")
                                })
                                .collect(),
                        );
                        ControlFlow::Continue(())
                    });
                    (triggers, run.probes)
                });
            for (rule_index, (optimized_rule, (body_spec, _, existentials))) in
                rules.iter().zip(compiled.iter()).enumerate()
            {
                let rule = &optimized_rule.rule;
                let (triggers, probes) = &round_triggers[rule_index];
                stats.join_probes += *probes as usize;
                for values in triggers {
                    // Restricted-chase style satisfaction check: skip the
                    // trigger if an extension already satisfies the head.
                    let head_matcher = &mut head_matchers[rule_index];
                    head_matcher.clear();
                    for (slot, &value) in values.iter().enumerate() {
                        head_matcher.prebind(body_spec.var_of(slot), value);
                    }
                    let mut satisfied = false;
                    head_matcher.for_each(instance, |_| {
                        satisfied = true;
                        ControlFlow::Break(())
                    });
                    if satisfied {
                        continue;
                    }
                    if existentials.is_empty() {
                        for head_atom in &rule.head {
                            let fact = body_spec.image(head_atom, values);
                            if instance.insert(fact).expect("head image is variable-free") {
                                stats.derived_atoms += 1;
                                changed = true;
                            }
                        }
                    } else {
                        // Rules are constant- and null-free, so the premise
                        // nulls are exactly the nulls among the trigger values.
                        let premise_depth = values
                            .iter()
                            .filter_map(Term::as_null)
                            .map(|n| null_depth.get(&n).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0);
                        if !self.config.termination.allows_null_depth(premise_depth + 1) {
                            stats.suppressed_triggers += 1;
                            continue;
                        }
                        let nulls: Vec<(Variable, Term)> = existentials
                            .iter()
                            .map(|&z| {
                                let null = NullId(*null_counter);
                                *null_counter += 1;
                                stats.nulls_created += 1;
                                null_depth.insert(null, premise_depth + 1);
                                (z, Term::Null(null))
                            })
                            .collect();
                        for head_atom in &rule.head {
                            let fact = body_spec.image_with(head_atom, values, |v| {
                                nulls.iter().find(|&&(w, _)| w == v).map(|&(_, n)| n)
                            });
                            if instance.insert(fact).expect("head image is variable-free") {
                                stats.derived_atoms += 1;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::JoinOrdering;
    use vadalog_chase::TerminationPolicy;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    fn chain(n: usize) -> Database {
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        db(&facts)
    }

    #[test]
    fn transitive_closure_matches_expected_counts() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&chain(5));
        // Closure of a 5-edge chain: 5+4+3+2+1 = 15 pairs.
        assert_eq!(result.stats.derived_atoms, 15);
        assert!(result.holds(&parse_query("? :- t(n0, n5).").unwrap()));
    }

    #[test]
    fn join_ordering_changes_probe_counts_but_not_answers() {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let database = chain(30);
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();

        let pwl_aware = Reasoner::new(&program, EngineConfig::default());
        let naive = Reasoner::new(
            &program,
            EngineConfig {
                join_ordering: JoinOrdering::AsWritten,
                ..EngineConfig::default()
            },
        );
        let a = pwl_aware.run(&database);
        let b = naive.run(&database);
        assert_eq!(a.answers(&query), b.answers(&query));
        assert_eq!(a.stats.derived_atoms, b.stats.derived_atoms);
        // Both evaluate the same fixpoint, but the probe counts differ — the
        // point of the ablation (either direction, depending on the data).
        assert_ne!(a.stats.join_probes, b.stats.join_probes);
    }

    #[test]
    fn strata_materialisation_toggle_preserves_answers() {
        let program = parse_rules(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             pair(X, Y) :- t(X, Y), red(Y).",
        )
        .unwrap();
        let database = db("edge(a, b). edge(b, c). red(c).");
        let query = parse_query("?(X) :- pair(X, Y).").unwrap();
        let with = Reasoner::new(&program, EngineConfig::default());
        let without = Reasoner::new(
            &program,
            EngineConfig {
                materialize_strata: false,
                ..EngineConfig::default()
            },
        );
        assert_eq!(
            with.answers(&database, &query),
            without.answers(&database, &query)
        );
    }

    #[test]
    fn existential_rules_respect_the_termination_policy() {
        let program = parse_rules("r(X, Z) :- p(X).\n p(Y) :- r(X, Y).").unwrap();
        let database = db("p(a).");
        let reasoner = Reasoner::new(
            &program,
            EngineConfig {
                termination: TerminationPolicy::MaxNullDepth(3),
                ..EngineConfig::default()
            },
        );
        let result = reasoner.run(&database);
        assert!(result.stats.nulls_created <= 4);
        assert!(result.stats.suppressed_triggers > 0);
        assert!(result.holds(&parse_query("? :- r(a, Y), r(Y, W).").unwrap()));
    }

    #[test]
    fn owl_example_end_to_end() {
        let program = parse_rules(
            "subclassStar(X, Y) :- subclass(X, Y).\n\
             subclassStar(X, Z) :- subclassStar(X, Y), subclass(Y, Z).\n\
             type(X, Z) :- type(X, Y), subclassStar(Y, Z).\n\
             triple(X, Z, W) :- type(X, Y), restriction(Y, Z).\n\
             triple(Z, W, X) :- triple(X, Y, Z), inverse(Y, W).\n\
             type(X, W) :- triple(X, Y, Z), restriction(W, Y).",
        )
        .unwrap();
        let database = db("subclass(student, person). subclass(person, agent).\n\
             type(alice, student). type(alice, enrolled).\n\
             restriction(enrolled, hasCourse). inverse(hasCourse, courseOf).");
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&database);
        assert!(result.holds(&parse_query("? :- type(alice, agent).").unwrap()));
        assert!(result.holds(&parse_query("? :- triple(alice, hasCourse, C).").unwrap()));
        assert!(result.holds(&parse_query("? :- triple(C, courseOf, alice).").unwrap()));
        assert!(result.stats.nulls_created >= 1);
    }

    #[test]
    fn stats_report_rounds_and_peak_atoms() {
        let program = parse_rules("t(X, Y) :- edge(X, Y).").unwrap();
        let reasoner = Reasoner::new(&program, EngineConfig::default());
        let result = reasoner.run(&chain(3));
        assert_eq!(result.stats.peak_atoms, 6);
        assert!(result.stats.rounds >= 1);
    }
}
