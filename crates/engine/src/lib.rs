//! A Vadalog-style bottom-up evaluation engine (Section 7 of the paper).
//!
//! The Vadalog system evaluates warded programs through a network of operator
//! nodes with three optimisations that piece-wise linearity makes possible or
//! more effective:
//!
//! 1. **aggressive termination control** — guide structures terminate
//!    recursive value invention as early as possible; here this is a
//!    null-generation-depth policy shared with the chase crate;
//! 2. **PWL-aware join ordering** — in a piece-wise linear rule the single
//!    body atom that is mutually recursive with the head is placed first (its
//!    delta drives the join), while the remaining atoms are ordered by how
//!    constrained they are;
//! 3. **materialisation at strata boundaries** — intermediate results are
//!    materialised per stratum (trading memory for re-computation), which the
//!    benchmark harness ablates.
//!
//! The [`Reasoner`] combines these switches with the stratified, semi-naive
//! evaluation style of the Datalog crate, extended with existential head
//! variables (null invention).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod optimizer;

pub use executor::{Reasoner, ReasonerResult, ReasonerStats};
pub use optimizer::{EngineConfig, JoinOrdering, OptimizedProgram, OptimizedRule};
