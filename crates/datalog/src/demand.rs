//! Demand-driven evaluation: the magic-sets query path with a
//! per-binding-pattern specialised-program cache.
//!
//! A [`DemandEngine`] wraps one base program and answers **bound** queries
//! without materialising the full model. Per query it:
//!
//! 1. computes the query's binding-pattern signature
//!    ([`vadalog_analysis::magic::demand_signature`]) and looks up — or
//!    builds and caches — the **specialised program** for that signature:
//!    the magic-sets rewrite plus its stratification plus per-stratum
//!    compiled [`vadalog_model::JoinSpec`]s and packed head templates.
//!    Rewrite and compilation happen **once per pattern**; every later
//!    query with the same shape only swaps the seed constants
//!    ([`vadalog_analysis::magic::MagicRewrite::specialise`]);
//! 2. builds a **scratch instance** by deep-copying only the extensional
//!    relations the rewritten program reads out of the caller's (frozen,
//!    typically `Arc`-shared snapshot) instance
//!    ([`vadalog_model::Instance::project`]) and inserting the ground
//!    magic seed facts — concurrent queries therefore never mutate shared
//!    state, and the served snapshot is never polluted with magic
//!    predicates;
//! 3. runs the ordinary stratified semi-naive fixpoint over the scratch
//!    instance through the same sharded round machinery as
//!    [`crate::DatalogEngine`] (bit-identical across thread counts), with
//!    the query deadline polled cooperatively between rounds;
//! 4. answers the renamed query over the scratch instance, charging any
//!    row limit and the remaining deadline to the final CQ evaluation.
//!
//! Queries the rewrite cannot specialise (all-free, extensional-only,
//! non-Datalog programs, name collisions) report
//! [`DemandError::Fallback`]; the caller runs its full-evaluation path —
//! answers are identical either way, which the cross-engine property suite
//! pins.

use crate::engine::{stratum_fixpoint, DatalogStats, RoundProfile};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vadalog_analysis::magic::{demand_signature, magic_rewrite, MagicFallback, MagicRewrite};
use vadalog_analysis::stratify::stratify;
use vadalog_analysis::BindingPattern;
use vadalog_model::{
    BudgetExceeded, ConjunctiveQuery, Instance, JoinSpec, MergeScratch, Predicate, Program,
    QueryBudget, RowTemplate, Symbol, Tgd,
};

/// Why a demand-driven evaluation did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemandError {
    /// The query cannot (or should not) be answered through the magic
    /// path; the caller must fall back to full evaluation.
    Fallback(MagicFallback),
    /// The query exceeded its budget on the magic path. This is a final
    /// answer, not a fallback: the full path would only take longer.
    Budget(BudgetExceeded),
}

impl std::fmt::Display for DemandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemandError::Fallback(reason) => write!(f, "magic fallback: {reason}"),
            DemandError::Budget(reason) => write!(f, "budget exceeded: {reason}"),
        }
    }
}

/// One demand-driven answer, with the observability the service's STATS
/// surface reports.
#[derive(Debug, Clone)]
pub struct DemandAnswer {
    /// The answer tuples — identical to what full materialisation plus the
    /// original query would produce.
    pub answers: BTreeSet<Vec<Symbol>>,
    /// Tuples derived into the scratch instance (magic, supplementary and
    /// adorned facts). The headline number: how much was *demanded*,
    /// versus the full materialisation the query did not pay for.
    pub demanded_tuples: u64,
    /// Total scratch-instance size (projected base rows + seeds + derived).
    pub scratch_atoms: usize,
    /// `true` iff the specialised program came out of the cache (no
    /// rewrite, no stratification, no join compilation this query).
    pub cache_hit: bool,
}

/// Per-phase breakdown of one demand-driven answer, collected by
/// [`DemandEngine::answer_profiled`] (the service's `PROFILE` verb).
/// Purely observational: collecting it reads values the evaluation
/// produced anyway, so profiled and unprofiled answers are bit-identical.
#[derive(Debug, Clone, Default)]
pub struct DemandProfile {
    /// Wall micros spent obtaining the specialised program (near zero on a
    /// cache hit).
    pub rewrite_micros: u64,
    /// Wall micros spent projecting the base relations and inserting the
    /// magic seed facts into the scratch instance.
    pub seed_micros: u64,
    /// Number of ground magic seed facts inserted.
    pub seed_facts: usize,
    /// Per-stratum fixpoint breakdowns, one round list per stratum in
    /// evaluation order.
    pub strata: Vec<Vec<RoundProfile>>,
    /// Wall micros of the final renamed-query evaluation over the scratch
    /// instance.
    pub answer_micros: u64,
    /// The engine counters of the fixpoint over the scratch instance.
    pub stats: DatalogStats,
}

/// Cumulative counters of a [`DemandEngine`], mirrored into the service's
/// STATS line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// Queries answered through the magic path.
    pub magic_queries: u64,
    /// Of those, queries whose specialised program was already cached.
    pub magic_cache_hits: u64,
    /// Total tuples derived across all demand-driven evaluations.
    pub demanded_tuples: u64,
}

/// One stratum of a specialised program, compiled once per binding
/// pattern: rule indexes into the rewritten program, their join specs and
/// packed head templates, and the stratum's predicates — everything
/// [`stratum_fixpoint`] needs, ready to replay per query.
struct CompiledDemandStratum {
    rules: Vec<usize>,
    specs: Vec<JoinSpec>,
    templates: Vec<RowTemplate>,
    predicates: Vec<Predicate>,
    recursive: bool,
}

/// A magic-sets rewrite plus everything derived from it that does not
/// depend on the query's constants: stratification, compiled join specs,
/// head templates, and the base (extensional) predicates the rewritten
/// program reads. Shared (`Arc`) between concurrent queries of one
/// binding-pattern signature.
pub struct SpecialisedProgram {
    rewrite: MagicRewrite,
    strata: Vec<CompiledDemandStratum>,
    base_predicates: Vec<Predicate>,
    generated: BTreeSet<Predicate>,
}

impl SpecialisedProgram {
    fn compile(rewrite: MagicRewrite) -> SpecialisedProgram {
        let stratification = stratify(&rewrite.program);
        let strata = stratification
            .strata
            .iter()
            .map(|stratum| {
                let rules = stratum.rules.clone();
                let specs: Vec<JoinSpec> = rules
                    .iter()
                    .map(|&i| JoinSpec::compile(&rewrite.program.tgds()[i].body))
                    .collect();
                let templates: Vec<RowTemplate> = rules
                    .iter()
                    .zip(specs.iter())
                    .map(|(&i, spec)| spec.row_template(&rewrite.program.tgds()[i].head[0]))
                    .collect();
                CompiledDemandStratum {
                    rules,
                    specs,
                    templates,
                    predicates: stratum.predicates.iter().copied().collect(),
                    recursive: stratum.recursive,
                }
            })
            .collect();
        let generated = rewrite.generated_predicates();
        // The scratch instance copies exactly what the rewritten program
        // and query read from the base: schema minus generated predicates
        // is the extensional fringe (adorned/magic/sup predicates are all
        // generated; original IDB names no longer occur).
        let mut base_predicates: BTreeSet<Predicate> = rewrite
            .program
            .schema()
            .into_iter()
            .filter(|p| !generated.contains(p))
            .collect();
        base_predicates.extend(
            rewrite
                .query
                .atoms
                .iter()
                .map(|a| a.predicate)
                .filter(|p| !generated.contains(p)),
        );
        SpecialisedProgram {
            rewrite,
            strata,
            base_predicates: base_predicates.into_iter().collect(),
            generated,
        }
    }

    /// The underlying rewrite (for rendering / inspection).
    pub fn rewrite(&self) -> &MagicRewrite {
        &self.rewrite
    }
}

/// The demand-driven query engine. Create one per served program and share
/// it: the cache and counters are internally synchronised, and evaluation
/// never mutates the caller's instance.
pub struct DemandEngine {
    program: Program,
    threads: usize,
    #[allow(clippy::type_complexity)]
    cache: Mutex<HashMap<Vec<(Predicate, BindingPattern)>, Arc<SpecialisedProgram>>>,
    magic_queries: AtomicU64,
    magic_cache_hits: AtomicU64,
    demanded_tuples: AtomicU64,
}

impl DemandEngine {
    /// Creates a demand engine over a base program. Programs the magic
    /// rewrite cannot handle (e.g. non-Datalog) are accepted here — every
    /// query against them reports [`DemandError::Fallback`].
    pub fn new(program: Program) -> DemandEngine {
        DemandEngine {
            program,
            threads: 1,
            cache: Mutex::new(HashMap::new()),
            magic_queries: AtomicU64::new(0),
            magic_cache_hits: AtomicU64::new(0),
            demanded_tuples: AtomicU64::new(0),
        }
    }

    /// Sets the evaluation thread count (same semantics as
    /// [`crate::DatalogEngine::with_threads`]; answers are bit-identical
    /// for every count).
    pub fn with_threads(mut self, threads: usize) -> DemandEngine {
        self.threads = threads;
        self
    }

    /// The base program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Cumulative counters (relaxed reads; exact once quiescent).
    pub fn stats(&self) -> DemandStats {
        DemandStats {
            magic_queries: self.magic_queries.load(Ordering::Relaxed),
            magic_cache_hits: self.magic_cache_hits.load(Ordering::Relaxed),
            demanded_tuples: self.demanded_tuples.load(Ordering::Relaxed),
        }
    }

    /// Number of cached specialised programs (distinct binding-pattern
    /// signatures seen so far).
    pub fn cached_patterns(&self) -> usize {
        self.cache.lock().expect("demand cache lock poisoned").len()
    }

    /// The specialised program for a query's binding-pattern signature,
    /// building and caching it on first sight. The boolean is `true` on a
    /// cache hit. Rewrite + compile run under the cache lock: a pattern is
    /// compiled exactly once even under concurrent first queries, and
    /// compilation is a few-millisecond, query-constant-independent cost.
    pub fn specialised(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(Arc<SpecialisedProgram>, bool), MagicFallback> {
        let signature = demand_signature(&self.program, query);
        if signature.is_empty() {
            return Err(MagicFallback::NoIntensionalAtom);
        }
        let mut cache = self.cache.lock().expect("demand cache lock poisoned");
        if let Some(cached) = cache.get(&signature) {
            return Ok((Arc::clone(cached), true));
        }
        let rewrite = magic_rewrite(&self.program, query)?;
        let specialised = Arc::new(SpecialisedProgram::compile(rewrite));
        cache.insert(signature, Arc::clone(&specialised));
        Ok((specialised, false))
    }

    /// Answers `query` demand-first against `base` (a served snapshot or
    /// any materialisation-free EDB instance). See the module docs for the
    /// pipeline; `base` is never mutated.
    pub fn answer(
        &self,
        base: &Instance,
        query: &ConjunctiveQuery,
        budget: &QueryBudget,
    ) -> Result<DemandAnswer, DemandError> {
        self.answer_inner(base, query, budget, None)
    }

    /// [`DemandEngine::answer`] with a per-phase breakdown: rewrite/seed/
    /// per-stratum-round/answer wall micros plus the full fixpoint
    /// counters. The answer — tuples, demanded counts, cache behaviour —
    /// is bit-identical to the unprofiled path.
    pub fn answer_profiled(
        &self,
        base: &Instance,
        query: &ConjunctiveQuery,
        budget: &QueryBudget,
    ) -> Result<(DemandAnswer, DemandProfile), DemandError> {
        let mut profile = DemandProfile::default();
        let answer = self.answer_inner(base, query, budget, Some(&mut profile))?;
        Ok((answer, profile))
    }

    fn answer_inner(
        &self,
        base: &Instance,
        query: &ConjunctiveQuery,
        budget: &QueryBudget,
        mut profile: Option<&mut DemandProfile>,
    ) -> Result<DemandAnswer, DemandError> {
        let mut span = vadalog_obs::span("demand.answer");
        let phase_start =
            |profile: &Option<&mut DemandProfile>| profile.is_some().then(Instant::now);
        let micros = |start: Option<Instant>| start.map_or(0, |s| s.elapsed().as_micros() as u64);
        let deadline = budget.deadline();
        let started = phase_start(&profile);
        let (specialised, cache_hit) = self.specialised(query).map_err(|reason| {
            vadalog_obs::event("demand.fallback", || format!("reason={reason}"));
            DemandError::Fallback(reason)
        })?;
        if let Some(p) = profile.as_deref_mut() {
            p.rewrite_micros = micros(started);
        }
        if span.active() {
            span.kv("cache_hit", cache_hit);
        }
        // A base relation under a generated name would be read as (or
        // shadowed by) rewrite output — refuse rather than mix data.
        if let Some(&taken) = specialised
            .generated
            .iter()
            .find(|&&p| base.relation(p).is_some())
        {
            let reason = MagicFallback::NameCollision(taken.name().to_string());
            vadalog_obs::event("demand.fallback", || format!("reason={reason}"));
            return Err(DemandError::Fallback(reason));
        }
        let (seeds, renamed_query) = specialised
            .rewrite
            .specialise(query)
            .map_err(|e| DemandError::Fallback(MagicFallback::Construction(e)))?;

        self.magic_queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.magic_cache_hits.fetch_add(1, Ordering::Relaxed);
        }

        let started = phase_start(&profile);
        let seed_facts = seeds.len();
        let mut scratch = base.project(specialised.base_predicates.iter().copied());
        for seed in seeds {
            scratch
                .insert(seed)
                .map_err(|e| DemandError::Fallback(MagicFallback::Construction(e.to_string())))?;
        }
        if let Some(p) = profile.as_deref_mut() {
            p.seed_micros = micros(started);
            p.seed_facts = seed_facts;
        }

        let mut stats = DatalogStats::default();
        let mut merge = MergeScratch::new();
        for stratum in &specialised.strata {
            let rules: Vec<&Tgd> = stratum
                .rules
                .iter()
                .map(|&i| &specialised.rewrite.program.tgds()[i])
                .collect();
            let mut rounds = profile.is_some().then(Vec::new);
            stratum_fixpoint(
                &rules,
                &stratum.specs,
                &stratum.templates,
                &stratum.predicates,
                stratum.recursive,
                &mut scratch,
                self.threads,
                &mut merge,
                &mut stats,
                deadline,
                rounds.as_mut(),
            )
            .map_err(DemandError::Budget)?;
            if let (Some(p), Some(rounds)) = (profile.as_deref_mut(), rounds) {
                p.strata.push(rounds);
            }
        }
        let demanded = stats.derived_atoms as u64;
        self.demanded_tuples.fetch_add(demanded, Ordering::Relaxed);
        if span.active() {
            span.kv("demanded_tuples", demanded);
            span.kv("scratch_atoms", scratch.len());
        }

        let started = phase_start(&profile);
        let answers = if budget.is_unlimited() {
            renamed_query.evaluate_with_threads(&scratch, self.threads)
        } else {
            let remaining = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(DemandError::Budget(BudgetExceeded::Deadline));
                    }
                    Some(d - now)
                }
                None => None,
            };
            let residual = QueryBudget {
                timeout: remaining,
                max_rows: budget.max_rows,
            };
            renamed_query
                .evaluate_budgeted(&scratch, self.threads, &residual)
                .map_err(DemandError::Budget)?
        };
        if let Some(p) = profile {
            p.answer_micros = micros(started);
            p.stats = stats;
        }
        if span.active() {
            span.kv("answers", answers.len());
        }
        Ok(DemandAnswer {
            answers,
            demanded_tuples: demanded,
            scratch_atoms: scratch.len(),
            cache_hit,
        })
    }
}

impl std::fmt::Debug for DemandEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DemandEngine")
            .field("rules", &self.program.len())
            .field("threads", &self.threads)
            .field("cached_patterns", &self.cached_patterns())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatalogEngine;
    use std::time::Duration;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    const TC: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";

    fn chain_instance(n: usize) -> Instance {
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        parse(&facts).unwrap().database.into_instance()
    }

    #[test]
    fn demand_answers_match_full_evaluation() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(20);
        let engine = DemandEngine::new(program.clone());
        let query = parse_query("?(Y) :- t(n3, Y).").unwrap();

        let demand = engine
            .answer(&base, &query, &QueryBudget::unlimited())
            .unwrap();
        let full = DatalogEngine::new(program).unwrap();
        let mut db = vadalog_model::Database::new();
        for atom in base.iter() {
            db.insert(atom).unwrap();
        }
        let full_result = full.evaluate(&db);
        assert_eq!(demand.answers, full_result.answers(&query));
        assert_eq!(demand.answers.len(), 17); // n4..n20 reachable from n3
                                              // The chain query from n3 demands only the suffix: strictly fewer
                                              // tuples than the full closure (20·21/2 = 210 pairs).
        assert!(
            demand.demanded_tuples < full_result.stats.derived_atoms as u64,
            "demanded {} vs full {}",
            demand.demanded_tuples,
            full_result.stats.derived_atoms
        );
        assert!(!demand.cache_hit);
    }

    #[test]
    fn base_instance_is_never_mutated() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(8);
        let before = base.sorted_row_layout();
        let engine = DemandEngine::new(program);
        let query = parse_query("?(Y) :- t(n0, Y).").unwrap();
        engine
            .answer(&base, &query, &QueryBudget::unlimited())
            .unwrap();
        assert_eq!(base.sorted_row_layout(), before);
        assert!(base.relation(Predicate::new("m__t__bf")).is_none());
    }

    #[test]
    fn same_pattern_hits_the_cache_and_stays_bit_identical() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(12);
        let engine = DemandEngine::new(program);

        let first = engine
            .answer(
                &base,
                &parse_query("?(Y) :- t(n2, Y).").unwrap(),
                &QueryBudget::unlimited(),
            )
            .unwrap();
        assert!(!first.cache_hit);
        // Same query again: cache hit, bit-identical answers.
        let again = engine
            .answer(
                &base,
                &parse_query("?(Y) :- t(n2, Y).").unwrap(),
                &QueryBudget::unlimited(),
            )
            .unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.answers, first.answers);
        assert_eq!(again.demanded_tuples, first.demanded_tuples);
        // Different constant, same pattern: still a cache hit.
        let other = engine
            .answer(
                &base,
                &parse_query("?(Y) :- t(n9, Y).").unwrap(),
                &QueryBudget::unlimited(),
            )
            .unwrap();
        assert!(other.cache_hit);
        assert_eq!(other.answers.len(), 3); // n10, n11, n12
                                            // Different pattern: a new cache entry.
        let point = engine
            .answer(
                &base,
                &parse_query("? :- t(n2, n5).").unwrap(),
                &QueryBudget::unlimited(),
            )
            .unwrap();
        assert!(!point.cache_hit);
        assert_eq!(point.answers.len(), 1); // the empty tuple: t(n2,n5) holds
        let stats = engine.stats();
        assert_eq!(stats.magic_queries, 4);
        assert_eq!(stats.magic_cache_hits, 2);
        assert_eq!(engine.cached_patterns(), 2);
    }

    #[test]
    fn unspecialisable_queries_report_fallback() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(4);
        let engine = DemandEngine::new(program);
        let all_free = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert!(matches!(
            engine.answer(&base, &all_free, &QueryBudget::unlimited()),
            Err(DemandError::Fallback(MagicFallback::AllFree))
        ));
        let edb_only = parse_query("?(Y) :- edge(n0, Y).").unwrap();
        assert!(matches!(
            engine.answer(&base, &edb_only, &QueryBudget::unlimited()),
            Err(DemandError::Fallback(MagicFallback::NoIntensionalAtom))
        ));
        assert_eq!(engine.stats().magic_queries, 0);
    }

    #[test]
    fn expired_deadline_cancels_the_magic_path() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(10);
        let engine = DemandEngine::new(program);
        let query = parse_query("?(Y) :- t(n0, Y).").unwrap();
        let budget = QueryBudget {
            timeout: Some(Duration::ZERO),
            max_rows: None,
        };
        assert!(matches!(
            engine.answer(&base, &query, &budget),
            Err(DemandError::Budget(BudgetExceeded::Deadline))
        ));
    }

    #[test]
    fn row_limit_applies_to_the_answer_set() {
        let program = parse_rules(TC).unwrap();
        let base = chain_instance(10);
        let engine = DemandEngine::new(program);
        let query = parse_query("?(Y) :- t(n0, Y).").unwrap();
        let budget = QueryBudget {
            timeout: None,
            max_rows: Some(2),
        };
        assert!(matches!(
            engine.answer(&base, &query, &budget),
            Err(DemandError::Budget(BudgetExceeded::RowLimit))
        ));
        // A generous cap passes untouched.
        let roomy = QueryBudget {
            timeout: None,
            max_rows: Some(1000),
        };
        assert_eq!(
            engine.answer(&base, &query, &roomy).unwrap().answers.len(),
            10
        );
    }

    #[test]
    fn threads_are_bit_identical_on_the_demand_path() {
        let program = parse_rules(TC).unwrap();
        let mut facts = String::new();
        // A denser graph: chain + back edges + a side branch.
        for i in 0..30 {
            facts.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
        }
        facts.push_str("edge(n10, n3). edge(n20, n7). edge(n5, n25).\n");
        let base = parse(&facts).unwrap().database.into_instance();
        let query = parse_query("?(Y) :- t(n3, Y).").unwrap();
        let reference = DemandEngine::new(program.clone())
            .answer(&base, &query, &QueryBudget::unlimited())
            .unwrap();
        for threads in [2usize, 4, 8] {
            let run = DemandEngine::new(program.clone())
                .with_threads(threads)
                .answer(&base, &query, &QueryBudget::unlimited())
                .unwrap();
            assert_eq!(run.answers, reference.answers, "threads={threads}");
            assert_eq!(
                run.demanded_tuples, reference.demanded_tuples,
                "threads={threads}"
            );
            assert_eq!(
                run.scratch_atoms, reference.scratch_atoms,
                "threads={threads}"
            );
        }
    }
}
