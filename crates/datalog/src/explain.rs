//! The shared query-plan rendering behind the service's `EXPLAIN` verb and
//! the lint CLI.
//!
//! Both surfaces print the *same* lines for the same (program, instance,
//! query) triple: the query's adornment signature, the magic-vs-full
//! decision (with the [`MagicFallback`] reason when the demand path is
//! refused), the magic-sets rewrite report when it applies, and the static
//! build/probe join plan of the query atoms against the instance — join
//! order, index kinds and the planner's estimated fan-outs, straight from
//! [`vadalog_model::JoinPlan::explain`]. Keeping one renderer here means
//! plan text cannot drift between the CLI and the service.
//!
//! Nothing in this module evaluates the query or mutates the instance;
//! plan estimates come from the instance's existing index statistics.

use std::fmt::Write as _;
use vadalog_analysis::magic::{demand_signature, magic_rewrite};
use vadalog_model::{ConjunctiveQuery, Instance, JoinSpec, Program};

/// The rendered explanation of how a query would be evaluated.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// `true` iff the demand-driven (magic-sets) path would be taken.
    pub magic: bool,
    /// The report, one display line per entry (no embedded newlines).
    pub lines: Vec<String>,
}

/// Explains `query` against `program` and `instance` without evaluating.
///
/// `prefer_magic` mirrors the service's `MODE=` option: `false` forces the
/// full-evaluation decision (`MODE=FULL`); `true` lets the magic rewrite
/// decide and reports its fallback reason when it refuses. `cache_hit`,
/// when known (the service consults its specialised-program cache), is
/// surfaced on the decision line; pass `None` when no cache exists (the
/// lint CLI).
pub fn explain_query(
    program: &Program,
    instance: &Instance,
    query: &ConjunctiveQuery,
    prefer_magic: bool,
    cache_hit: Option<bool>,
) -> ExplainReport {
    let mut lines = Vec::new();
    lines.push(format!("query {query}"));

    // Adornment signature: which intensional atoms are demanded, with
    // which bound/free shape. Empty means there is nothing to demand.
    let signature = demand_signature(program, query);
    if signature.is_empty() {
        lines.push("adornment none (no intensional query atom)".to_string());
    } else {
        let mut line = String::from("adornment");
        for (predicate, pattern) in &signature {
            let _ = write!(line, " {}^{}", predicate.name(), pattern);
        }
        lines.push(line);
    }

    // The magic-vs-full decision, with the reason when magic is refused.
    let decision = prefer_magic.then(|| magic_rewrite(program, query));
    let magic = matches!(&decision, Some(Ok(_)));
    match &decision {
        Some(Ok(rewrite)) => {
            let cache = match cache_hit {
                Some(true) => " cache=hit",
                Some(false) => " cache=miss",
                None => "",
            };
            lines.push(format!(
                "decision magic seeds={}{cache}",
                rewrite.seeds.len()
            ));
            for line in rewrite.render().lines() {
                lines.push(format!("rewrite {line}"));
            }
        }
        Some(Err(reason)) => lines.push(format!("decision full reason={reason}")),
        None => lines.push("decision full reason=mode=full requested".to_string()),
    }

    // The static build/probe plan of the query atoms against the instance
    // — what the full path (and the magic path's final answer evaluation,
    // modulo renaming) replays per shard.
    let spec = JoinSpec::compile(&query.atoms);
    let plan = spec.plan(instance, &[]);
    lines.push(format!(
        "plan atoms={} streaming={}",
        query.atoms.len(),
        plan.prefers_streaming()
    ));
    for line in plan.explain(&spec) {
        lines.push(format!("plan {line}"));
    }

    ExplainReport { magic, lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn setup() -> (Program, Instance) {
        let program =
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap();
        let instance = parse("edge(a, b). edge(b, c). edge(c, d).")
            .unwrap()
            .database
            .into_instance();
        (program, instance)
    }

    #[test]
    fn bound_query_explains_the_magic_decision() {
        let (program, instance) = setup();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let report = explain_query(&program, &instance, &query, true, Some(false));
        assert!(report.magic);
        assert!(report.lines.iter().any(|l| l == "adornment t^bf"));
        assert!(report
            .lines
            .iter()
            .any(|l| l.starts_with("decision magic seeds=1 cache=miss")));
        assert!(report.lines.iter().any(|l| l.starts_with("rewrite ")));
        assert!(report
            .lines
            .iter()
            .any(|l| l.starts_with("plan step=0 atom=t/2 ")));
    }

    #[test]
    fn all_free_query_explains_the_fallback_reason() {
        let (program, instance) = setup();
        let query = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let report = explain_query(&program, &instance, &query, true, None);
        assert!(!report.magic);
        assert!(report
            .lines
            .iter()
            .any(|l| l == "decision full reason=every intensional query atom is all-free"));
        // No rewrite lines on a fallback.
        assert!(!report.lines.iter().any(|l| l.starts_with("rewrite ")));
    }

    #[test]
    fn mode_full_bypasses_magic_without_consulting_the_rewrite() {
        let (program, instance) = setup();
        let query = parse_query("?(Y) :- t(a, Y).").unwrap();
        let report = explain_query(&program, &instance, &query, false, None);
        assert!(!report.magic);
        assert!(report
            .lines
            .iter()
            .any(|l| l == "decision full reason=mode=full requested"));
    }

    #[test]
    fn plan_lines_expose_probe_kinds_and_estimates() {
        let (program, instance) = setup();
        // Two-atom join: the second step must probe an index on the shared
        // variable rather than scanning.
        let query = parse_query("?(X, Z) :- edge(X, Y), edge(Y, Z).").unwrap();
        let report = explain_query(&program, &instance, &query, true, None);
        let steps: Vec<&String> = report
            .lines
            .iter()
            .filter(|l| l.starts_with("plan step="))
            .collect();
        assert_eq!(steps.len(), 2);
        assert!(steps[1].contains("probe=index(col=") || steps[1].contains("probe=composite("));
        assert!(steps.iter().all(|s| s.contains(" est=")));
    }
}
