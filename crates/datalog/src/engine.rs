//! Semi-naive bottom-up evaluation.

use std::collections::BTreeSet;
use vadalog_analysis::stratify::{stratify, Stratification};
use vadalog_model::{
    homomorphisms, Atom, ConjunctiveQuery, Database, HomSearch, Instance, ModelError, Program,
    Substitution, Symbol,
};

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatalogStats {
    /// Total number of derived (IDB) atoms.
    pub derived_atoms: usize,
    /// Total number of atoms materialised (EDB + IDB) — the space proxy.
    pub peak_atoms: usize,
    /// Number of semi-naive iterations summed over all strata.
    pub iterations: usize,
    /// Number of rule-body homomorphisms enumerated.
    pub joins_evaluated: usize,
}

/// The result of evaluating a Datalog program over a database.
#[derive(Debug, Clone)]
pub struct DatalogResult {
    /// The materialised instance (database facts plus derived facts).
    pub instance: Instance,
    /// Run statistics.
    pub stats: DatalogStats,
}

impl DatalogResult {
    /// Evaluates a conjunctive query over the materialised instance.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` iff the Boolean query holds in the materialised instance.
    pub fn holds(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// A stratified semi-naive Datalog engine for a fixed program.
#[derive(Debug, Clone)]
pub struct DatalogEngine {
    program: Program,
    stratification: Stratification,
}

impl DatalogEngine {
    /// Creates an engine. Fails if the program is not plain Datalog (i.e.
    /// contains existential variables or multi-atom heads).
    pub fn new(program: Program) -> Result<DatalogEngine, ModelError> {
        if !program.is_datalog() {
            return Err(ModelError::InvalidTgd(
                "the Datalog engine requires full single-head TGDs (no existentials)".into(),
            ));
        }
        let stratification = stratify(&program);
        Ok(DatalogEngine {
            program,
            stratification,
        })
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification used for evaluation.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Materialises all IDB predicates over `database`.
    pub fn evaluate(&self, database: &Database) -> DatalogResult {
        let mut instance = database.as_instance().clone();
        let mut stats = DatalogStats::default();

        for stratum in &self.stratification.strata {
            let rules: Vec<&_> = stratum
                .rules
                .iter()
                .map(|&i| &self.program.tgds()[i])
                .collect();

            // Naive first round: evaluate every rule on the full instance.
            let mut delta = Instance::new();
            for rule in &rules {
                stats.joins_evaluated += 1;
                for h in homomorphisms(&rule.body, &instance, &Substitution::new(), HomSearch::all())
                {
                    let fact = h.apply_atom(&rule.head[0]);
                    if !instance.contains(&fact) {
                        delta.insert(fact.clone()).expect("derived fact is ground");
                        instance.insert(fact).expect("derived fact is ground");
                        stats.derived_atoms += 1;
                    }
                }
            }
            stats.iterations += 1;

            if !stratum.recursive {
                continue;
            }

            // Semi-naive rounds: differentiate each rule with respect to the
            // predicates of this stratum, seeding one body atom from the delta.
            while !delta.is_empty() {
                stats.iterations += 1;
                let mut next_delta = Instance::new();
                for rule in &rules {
                    for (pos, body_atom) in rule.body.iter().enumerate() {
                        if !stratum.predicates.contains(&body_atom.predicate) {
                            continue;
                        }
                        // Seed the differentiated atom from the delta...
                        for delta_fact in delta.atoms_with_predicate(body_atom.predicate) {
                            let seed = match match_atom(body_atom, delta_fact) {
                                Some(s) => s,
                                None => continue,
                            };
                            // ...and the remaining atoms from the full instance.
                            let rest: Vec<Atom> = rule
                                .body
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != pos)
                                .map(|(_, a)| a.clone())
                                .collect();
                            stats.joins_evaluated += 1;
                            for h in homomorphisms(&rest, &instance, &seed, HomSearch::all()) {
                                let fact = h.apply_atom(&rule.head[0]);
                                if !instance.contains(&fact) {
                                    next_delta
                                        .insert(fact.clone())
                                        .expect("derived fact is ground");
                                    instance.insert(fact).expect("derived fact is ground");
                                    stats.derived_atoms += 1;
                                }
                            }
                        }
                    }
                }
                delta = next_delta;
            }
        }

        stats.peak_atoms = instance.len();
        DatalogResult { instance, stats }
    }

    /// Evaluates the program and answers the query in one call.
    pub fn answers(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
    ) -> BTreeSet<Vec<Symbol>> {
        self.evaluate(database).answers(query)
    }
}

/// Matches a body atom against a concrete fact, returning the induced
/// substitution if they are compatible.
fn match_atom(pattern: &Atom, fact: &Atom) -> Option<Substitution> {
    if pattern.predicate != fact.predicate || pattern.arity() != fact.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (p, f) in pattern.terms.iter().zip(fact.terms.iter()) {
        if p.is_var() {
            match subst.get(p) {
                Some(existing) if existing != *f => return None,
                Some(_) => {}
                None => subst.bind(*p, *f),
            }
        } else if p != f {
            return None;
        }
    }
    Some(subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn engine(rules: &str) -> DatalogEngine {
        DatalogEngine::new(parse_rules(rules).unwrap()).unwrap()
    }

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    #[test]
    fn rejects_programs_with_existentials() {
        let p = parse_rules("r(X, Z) :- p(X).").unwrap();
        assert!(DatalogEngine::new(p).is_err());
    }

    #[test]
    fn linear_transitive_closure_over_a_chain() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c). edge(c, d). edge(d, e)."));
        // Closure of a 4-edge chain has 4+3+2+1 = 10 pairs.
        assert_eq!(result.stats.derived_atoms, 10);
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(result.answers(&q).len(), 10);
        assert!(result.holds(&parse_query("? :- t(a, e).").unwrap()));
    }

    #[test]
    fn nonlinear_transitive_closure_matches_linear_answers() {
        let lin = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let non = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c). edge(c, a). edge(c, d).");
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(lin.answers(&database, &q), non.answers(&database, &q));
    }

    #[test]
    fn mutually_recursive_predicates_are_evaluated_together() {
        let e = engine(
            "even(X) :- zero(X).\n even(Y) :- odd(X), succ(X, Y).\n odd(Y) :- even(X), succ(X, Y).",
        );
        let database = db("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).");
        let result = e.evaluate(&database);
        assert!(result.holds(&parse_query("? :- even(n0).").unwrap()));
        assert!(result.holds(&parse_query("? :- odd(n1).").unwrap()));
        assert!(result.holds(&parse_query("? :- even(n4).").unwrap()));
        assert!(!result.holds(&parse_query("? :- odd(n4).").unwrap()));
    }

    #[test]
    fn strata_are_evaluated_bottom_up() {
        let e = engine(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             reach_pair(X, Y) :- t(X, Y), red(Y).",
        );
        let database = db("edge(a, b). edge(b, c). red(c).");
        let result = e.evaluate(&database);
        let q = parse_query("?(X) :- reach_pair(X, Y).").unwrap();
        let answers = result.answers(&q);
        assert_eq!(answers.len(), 2); // a and b reach the red node c.
    }

    #[test]
    fn repeated_head_variables_are_handled() {
        let e = engine("loop(X, X) :- node(X).\n self(X) :- loop(X, X).");
        let result = e.evaluate(&db("node(a). node(b)."));
        assert!(result.holds(&parse_query("? :- self(a).").unwrap()));
        assert_eq!(result.stats.derived_atoms, 4);
    }

    #[test]
    fn empty_database_yields_no_derivations() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&Database::new());
        assert_eq!(result.stats.derived_atoms, 0);
    }

    #[test]
    fn constants_in_queries_filter_answers() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c).");
        let q = parse_query("?(Y) :- t(a, Y).").unwrap();
        let answers = e.answers(&database, &q);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn semi_naive_does_not_rederive_known_facts() {
        // On a cycle the naive algorithm would loop forever re-deriving the
        // same facts; the semi-naive loop must converge and stop.
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, a).");
        let result = e.evaluate(&database);
        assert_eq!(result.stats.derived_atoms, 4); // t(a,b) t(b,a) t(a,a) t(b,b)
        assert!(result.stats.iterations < 10);
    }

    #[test]
    fn peak_atoms_counts_edb_plus_idb() {
        let e = engine("t(X, Y) :- edge(X, Y).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c)."));
        assert_eq!(result.stats.peak_atoms, 4);
    }
}
