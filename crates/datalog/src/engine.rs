//! Semi-naive bottom-up evaluation, driven by the packed build/probe join
//! kernel.
//!
//! Each rule body is compiled once per stratum into a
//! [`vadalog_model::JoinSpec`] and, per round, into a static build/probe
//! [`vadalog_model::JoinPlan`] (shared by every worker of the round); heads
//! compile into packed [`vadalog_model::RowTemplate`]s. The per-delta-fact
//! work is a [`Matcher::prematch`] against the packed delta row plus a
//! planned, allocation-free join against the full instance — the rule body
//! is never cloned, no per-node join-order estimation runs, and no
//! intermediate `Vec<Substitution>` is materialised.
//!
//! # Round structure and parallelism
//!
//! Every round (the naive first round and each semi-naive round) evaluates
//! against a **frozen** instance: derivations are parked in columnar packed
//! [`vadalog_model::DerivationBatch`]es and merged with one batched dedup
//! insert per relation at the end of the round
//! ([`vadalog_model::parallel::merge_derivations_with`], with scratch
//! buffers reused across rounds). Freezing the round makes the work
//! embarrassingly parallel:
//!
//! * the **naive first round** is sharded by the rows of each rule's
//!   *driver atom* (body atom 0): the driver relation's rows are
//!   hash-partitioned into a fixed number of shards and each (rule, shard)
//!   task prematches the driver rows and joins the remaining body atoms —
//!   the same decomposition [`vadalog_model::parallel::sharded_match_count`]
//!   uses for CQs;
//! * **semi-naive rounds** shard each predicate's delta row range the same
//!   way, producing (rule, body position, shard) tasks.
//!
//! Tasks run on [`DatalogEngine::with_threads`] scoped workers, each driving
//! its own [`Matcher`] read-only over the shared instance. Before parking
//! its batch, every task **pre-dedups** against the frozen instance
//! ([`vadalog_model::DerivationBatch::prededup_against`]) so the sequential
//! merge only sees rows that are new this round (the dropped count is
//! reported as [`DatalogStats::rows_prededuped`]). Because the task
//! decomposition, the shared plans and the merge order depend only on the
//! data, results (row-id order included) are bit-identical for every thread
//! count; `threads = 1` runs the same tasks inline.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::time::Instant;
use vadalog_analysis::stratify::{stratify, Stratification};
use vadalog_model::parallel::{self, DerivationBatch};
use vadalog_model::{
    Atom, BudgetExceeded, ConjunctiveQuery, Database, Instance, JoinPlan, JoinSpec, Matcher,
    MergeScratch, ModelError, Predicate, Program, RowId, RowTemplate, Symbol, Tgd,
};

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatalogStats {
    /// Total number of derived (IDB) atoms.
    pub derived_atoms: usize,
    /// Total number of atoms materialised (EDB + IDB) — the space proxy.
    pub peak_atoms: usize,
    /// Number of semi-naive iterations summed over all strata.
    pub iterations: usize,
    /// Number of join-kernel invocations. The counted unit is identical in
    /// both evaluation phases — one invocation of the join kernel — but the
    /// phases drive the kernel differently: the naive round invokes it once
    /// per rule (the whole instance is the driver), while semi-naive rounds
    /// invoke it once per (rule, differentiated body position, matching delta
    /// fact), the delta fact being the driver. For a driver-independent
    /// measure of join effort compare `join_probes`.
    pub joins_evaluated: usize,
    /// Candidate rows examined across all join-kernel invocations. Unlike
    /// `joins_evaluated` this unit is independent of what drives the join,
    /// so naive and semi-naive work is directly comparable.
    pub join_probes: u64,
    /// Planned probe steps answered by a composite (multi-column) fused-key
    /// index instead of a single-column index plus residual filtering (see
    /// [`vadalog_model::JoinStats::composite_probes`]).
    pub composite_probes: u64,
    /// Index probes skipped outright because the index's fingerprint filter
    /// proved the probe key absent — the common case in miss-heavy
    /// semi-naive delta rounds (see
    /// [`vadalog_model::JoinStats::misses_filtered`]). Purely observational:
    /// a filtered probe has zero candidates either way.
    pub probe_misses_filtered: u64,
    /// Rows dropped by the workers' pre-dedup against the round's frozen
    /// instance — work the sequential merge phase no longer performs. The
    /// counter makes the serial-section shrinkage observable; it never
    /// affects results (pre-dedup'd rows are exactly the duplicates the
    /// merge would have skipped).
    pub rows_prededuped: u64,
    /// Strata an incremental ingest skipped without reading any data —
    /// either proven unreachable from the batch's touched predicates by the
    /// predicate graph, or reachable but presented with no delta rows (see
    /// [`crate::IncrementalEngine`]). Always 0 for full evaluation.
    pub strata_skipped: usize,
    /// Fixpoint rounds executed through the incremental ingest path (the
    /// cross-stratum delta-seeded round of each affected stratum plus the
    /// semi-naive rounds it triggers). Always 0 for full evaluation, where
    /// rounds are counted by `iterations` alone (`iterations` covers both
    /// paths).
    pub rounds_incremental: usize,
}

/// Observational breakdown of one fixpoint round, collected by
/// [`stratum_fixpoint`] when the caller supplies a profile sink (the
/// service's `PROFILE` verb does; plain evaluation passes `None` and pays
/// nothing). Round 0 of a stratum is the naive round — its "delta" is the
/// full driver row set; each later round's delta is the previous round's
/// output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundProfile {
    /// Round index within the stratum (0 = naive round).
    pub round: usize,
    /// Wall-clock micros of the round (task fan-out + merge).
    pub wall_micros: u64,
    /// Rows seeding the round: driver rows for the naive round, the summed
    /// watermark delta ranges for semi-naive rounds.
    pub delta_rows: u64,
    /// Rows the round added to the instance (post-dedup).
    pub derived_rows: u64,
    /// Join-kernel candidate rows examined this round.
    pub join_probes: u64,
    /// Rows dropped by worker-side pre-dedup this round.
    pub rows_prededuped: u64,
}

/// The result of evaluating a Datalog program over a database.
#[derive(Debug, Clone)]
pub struct DatalogResult {
    /// The materialised instance (database facts plus derived facts).
    pub instance: Instance,
    /// Run statistics.
    pub stats: DatalogStats,
}

impl DatalogResult {
    /// Evaluates a conjunctive query over the materialised instance.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` iff the Boolean query holds in the materialised instance.
    pub fn holds(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// One task's output: the derivations for the task's head predicate plus the
/// task-local counters, produced against the round's frozen instance and
/// merged in deterministic task order at the end of the round.
pub(crate) struct TaskOutput {
    batch: DerivationBatch,
    joins_evaluated: usize,
    join_probes: u64,
    composite_probes: u64,
    probe_misses_filtered: u64,
    rows_prededuped: u64,
}

impl TaskOutput {
    fn new(head: &Atom) -> TaskOutput {
        TaskOutput {
            batch: DerivationBatch::new(head.predicate, head.arity()),
            joins_evaluated: 0,
            join_probes: 0,
            composite_probes: 0,
            probe_misses_filtered: 0,
            rows_prededuped: 0,
        }
    }

    /// Folds one kernel run's counters and match count into the task.
    fn absorb_run(&mut self, run: vadalog_model::JoinStats) {
        self.batch.matches += run.matches;
        self.join_probes += run.probes;
        self.composite_probes += run.composite_probes;
        self.probe_misses_filtered += run.misses_filtered;
    }

    /// Worker-side pre-dedup against the round's frozen instance: the merge
    /// phase then inserts only rows that are new this round.
    fn prededup(mut self, frozen: &Instance) -> TaskOutput {
        self.rows_prededuped = self.batch.prededup_against(frozen);
        self
    }
}

/// Merges a round's task outputs into the instance (one batched dedup insert
/// per relation, in task order, through the round-reused scratch) and folds
/// the task counters into the stats.
pub(crate) fn flush_round(
    outputs: Vec<TaskOutput>,
    scratch: &mut MergeScratch,
    instance: &mut Instance,
    stats: &mut DatalogStats,
) {
    let mut batches = Vec::with_capacity(outputs.len());
    for out in outputs {
        stats.joins_evaluated += out.joins_evaluated;
        stats.join_probes += out.join_probes;
        stats.composite_probes += out.composite_probes;
        stats.probe_misses_filtered += out.probe_misses_filtered;
        stats.rows_prededuped += out.rows_prededuped;
        batches.push(out.batch);
    }
    stats.derived_atoms += parallel::merge_derivations_with(scratch, instance, batches)
        .expect("derived facts are ground and within capacity");
}

/// One delta row range of a seeded round: the rows `lo..hi` of `predicate`
/// drive every body position over that predicate. Entries of a round must
/// name distinct predicates and have `lo < hi`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaRange {
    pub predicate: Predicate,
    pub lo: RowId,
    pub hi: RowId,
}

/// Runs one **seeded round** against the frozen `instance`: for every rule
/// and every body position whose predicate carries a delta range, the delta
/// rows seed that position (hash-partitioned into the fixed shard count) and
/// the remaining body atoms join along a per-(rule, position) build/probe
/// plan shared by all of the position's shards and workers. Returns the task
/// outputs, pre-deduped, in deterministic task order — the caller merges
/// them with [`flush_round`].
///
/// This is the shared round core of the batch engine's semi-naive loop
/// (deltas over the stratum's own predicates) and of the incremental
/// engine's ingest path (deltas over *any* body predicate: freshly ingested
/// EDB rows and rows lower strata derived this ingest). The task
/// decomposition depends only on the data, so results — row-id order
/// included — are bit-identical for every thread count.
pub(crate) fn seeded_round(
    rules: &[&Tgd],
    specs: &[JoinSpec],
    templates: &[RowTemplate],
    deltas: &[DeltaRange],
    instance: &Instance,
    threads: usize,
) -> Vec<TaskOutput> {
    let delta_shards: Vec<Vec<Vec<RowId>>> = deltas
        .iter()
        .map(|delta| {
            let rel = instance
                .relation(delta.predicate)
                .expect("delta relation exists");
            parallel::shard_delta_rows(rel, delta.lo, delta.hi)
        })
        .collect();
    struct DeltaTask {
        rule_index: usize,
        pos: usize,
        delta_index: usize,
        shard: usize,
        /// Index into the round's plan list (one shared plan per
        /// differentiated (rule, position), reused by all of its shards and
        /// workers).
        plan_index: usize,
    }
    let mut plans: Vec<JoinPlan> = Vec::new();
    let mut tasks: Vec<DeltaTask> = Vec::new();
    for (rule_index, rule) in rules.iter().enumerate() {
        for (pos, body_atom) in rule.body.iter().enumerate() {
            let Some(delta_index) = deltas
                .iter()
                .position(|d| d.predicate == body_atom.predicate)
            else {
                continue;
            };
            let arity = instance
                .arity_of(body_atom.predicate)
                .expect("delta relation exists");
            if arity != body_atom.arity() {
                continue;
            }
            let mut plan_index = None;
            for (shard, rows) in delta_shards[delta_index].iter().enumerate() {
                if !rows.is_empty() {
                    let plan_index = *plan_index.get_or_insert_with(|| {
                        plans.push(specs[rule_index].plan(instance, &[pos]));
                        plans.len() - 1
                    });
                    tasks.push(DeltaTask {
                        rule_index,
                        pos,
                        delta_index,
                        shard,
                        plan_index,
                    });
                }
            }
        }
    }
    parallel::run_tasks(threads, tasks.len(), |task_index| {
        let task = &tasks[task_index];
        let rule = rules[task.rule_index];
        let rel = instance
            .relation(deltas[task.delta_index].predicate)
            .expect("delta relation exists");
        let rows = &delta_shards[task.delta_index][task.shard];
        let mut out = TaskOutput::new(&rule.head[0]);
        let mut matcher = Matcher::new(&specs[task.rule_index]);
        matcher.set_plan(Some(&plans[task.plan_index]));
        // Seed the differentiated atom from each delta row of the shard and
        // join the remaining atoms against the full (frozen) instance along
        // the shared build/probe plan.
        for &row_id in rows {
            matcher.clear();
            if !matcher.prematch(task.pos, rel.row(row_id)) {
                continue;
            }
            out.joins_evaluated += 1;
            let run = matcher.for_each(instance, |bindings| {
                bindings.emit(&templates[task.rule_index], &mut out.batch.rows);
                ControlFlow::Continue(())
            });
            out.absorb_run(run);
        }
        out.prededup(instance)
    })
}

/// Runs one stratum to fixpoint against `instance`: the sharded naive first
/// round (driver-atom row ranges) followed, for recursive strata, by
/// watermark-delta semi-naive rounds until no stratum predicate grows. The
/// rules, compiled [`JoinSpec`]s and packed head [`RowTemplate`]s arrive
/// precompiled — [`DatalogEngine::evaluate`] compiles them per stratum per
/// run, while the demand engine's per-binding-pattern specialised-program
/// cache compiles them once and replays them for every query of the
/// pattern.
///
/// `deadline` is polled cooperatively at the top of every round (`None`
/// never cancels): a passed deadline stops the fixpoint with
/// [`BudgetExceeded::Deadline`] *between* rounds, leaving `instance` in a
/// sound-but-incomplete state the caller must discard. Unbudgeted callers
/// are bit-identical to the pre-extraction loop.
///
/// `profile`, when supplied, receives one [`RoundProfile`] per executed
/// round (delta sizes, probes, pre-dedup, wall micros). The sink and the
/// `datalog.round` trace spans are purely observational: they read counter
/// deltas the round produced anyway, so supplying a sink or enabling
/// tracing cannot change results or [`DatalogStats`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn stratum_fixpoint(
    rules: &[&Tgd],
    specs: &[JoinSpec],
    templates: &[RowTemplate],
    preds: &[Predicate],
    recursive: bool,
    instance: &mut Instance,
    threads: usize,
    scratch: &mut MergeScratch,
    stats: &mut DatalogStats,
    deadline: Option<Instant>,
    mut profile: Option<&mut Vec<RoundProfile>>,
) -> Result<(), BudgetExceeded> {
    let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);
    if expired(deadline) {
        return Err(BudgetExceeded::Deadline);
    }

    let mut stratum_span = vadalog_obs::span("datalog.stratum");
    if stratum_span.active() {
        stratum_span.kv("rules", rules.len());
        stratum_span.kv("recursive", recursive);
    }
    // One closing record per round, shared by the trace span and the
    // profile sink. Timing runs only when someone is listening.
    let observing =
        |profile: &Option<&mut Vec<RoundProfile>>| profile.is_some() || vadalog_obs::enabled();
    #[allow(clippy::too_many_arguments)]
    fn close_round(
        round: usize,
        start: Option<Instant>,
        before: DatalogStats,
        after: DatalogStats,
        delta_rows: u64,
        span: &mut vadalog_obs::Span,
        profile: &mut Option<&mut Vec<RoundProfile>>,
    ) {
        let Some(start) = start else { return };
        let sample = RoundProfile {
            round,
            wall_micros: start.elapsed().as_micros() as u64,
            delta_rows,
            derived_rows: (after.derived_atoms - before.derived_atoms) as u64,
            join_probes: after.join_probes - before.join_probes,
            rows_prededuped: after.rows_prededuped - before.rows_prededuped,
        };
        if span.active() {
            span.kv("round", sample.round);
            span.kv("delta_rows", sample.delta_rows);
            span.kv("derived_rows", sample.derived_rows);
            span.kv("join_probes", sample.join_probes);
            span.kv("rows_prededuped", sample.rows_prededuped);
        }
        if let Some(sink) = profile.as_deref_mut() {
            sink.push(sample);
        }
    }

    // The delta of a round is not a separate instance: rows are
    // append-only with stable ids, so "the facts derived in round
    // i" is exactly a per-relation row-id range. Each round records
    // the relation watermarks of the stratum's predicates; the next
    // round replays the rows between the previous and the current
    // watermark. A relation missing at the `lo` sample watermarks at
    // 0, so a predicate first materialised in a later round gets the
    // full `0..hi` range — every row of it is genuinely new. Rounds
    // are evaluated against a frozen instance (derivations merge at
    // the end of the round), so `lo..hi` is exactly the previous
    // round's output and seed rows are never re-joined as delta.
    let watermark = |instance: &Instance| -> Vec<RowId> {
        preds
            .iter()
            .map(|&p| instance.relation(p).map(|r| r.row_count()).unwrap_or(0))
            .collect()
    };
    let mut lo = watermark(instance);

    // Naive first round, sharded by **driver-atom row ranges**: each
    // rule's body atom 0 is the driver; its relation's rows are
    // hash-partitioned into the fixed shard count and each
    // (rule, shard) task prematches the driver rows and joins the
    // remaining atoms with the rule's shared build/probe plan. A
    // rule whose driver relation is absent (or has the wrong arity)
    // can have no matches and contributes no tasks. The round still
    // counts one `joins_evaluated` per rule — the whole instance
    // drives each rule exactly once, however many shards execute it.
    let mut round_span = vadalog_obs::span("datalog.round");
    let round_start = observing(&profile).then(Instant::now);
    let naive_before = *stats;
    stats.joins_evaluated += rules.len();
    let naive_shards: Vec<Option<Vec<Vec<RowId>>>> = rules
        .iter()
        .map(|rule| {
            let driver = &rule.body[0];
            instance
                .relation(driver.predicate)
                .filter(|rel| rel.arity() == driver.arity())
                .map(|rel| parallel::shard_delta_rows(rel, 0, rel.row_count()))
        })
        .collect();
    let naive_plans: Vec<JoinPlan> = specs.iter().map(|spec| spec.plan(instance, &[0])).collect();
    struct NaiveTask {
        rule_index: usize,
        shard: usize,
    }
    let mut naive_tasks: Vec<NaiveTask> = Vec::new();
    for (rule_index, shards) in naive_shards.iter().enumerate() {
        if let Some(shards) = shards {
            for (shard, rows) in shards.iter().enumerate() {
                if !rows.is_empty() {
                    naive_tasks.push(NaiveTask { rule_index, shard });
                }
            }
        }
    }
    let frozen = &*instance;
    let naive = parallel::run_tasks(threads, naive_tasks.len(), |task_index| {
        let task = &naive_tasks[task_index];
        let rule = rules[task.rule_index];
        let driver = &rule.body[0];
        let rel = frozen
            .relation(driver.predicate)
            .expect("sharded driver relation exists");
        let rows = &naive_shards[task.rule_index]
            .as_ref()
            .expect("task shards exist")[task.shard];
        let mut out = TaskOutput::new(&rule.head[0]);
        let mut matcher = Matcher::new(&specs[task.rule_index]);
        matcher.set_plan(Some(&naive_plans[task.rule_index]));
        for &row_id in rows {
            out.join_probes += 1;
            matcher.clear();
            if !matcher.prematch(0, rel.row(row_id)) {
                continue;
            }
            let run = matcher.for_each(frozen, |bindings| {
                bindings.emit(&templates[task.rule_index], &mut out.batch.rows);
                ControlFlow::Continue(())
            });
            out.absorb_run(run);
        }
        out.prededup(frozen)
    });
    flush_round(naive, scratch, instance, stats);
    stats.iterations += 1;
    let naive_delta_rows = if round_start.is_some() {
        naive_shards
            .iter()
            .flatten()
            .map(|shards| shards.iter().map(|rows| rows.len() as u64).sum::<u64>())
            .sum()
    } else {
        0
    };
    close_round(
        0,
        round_start,
        naive_before,
        *stats,
        naive_delta_rows,
        &mut round_span,
        &mut profile,
    );
    drop(round_span);

    if !recursive {
        return Ok(());
    }

    // Semi-naive rounds: differentiate each rule with respect to the
    // predicates of this stratum, seeding one body atom from the
    // delta. Each predicate's delta row range is hash-partitioned
    // once per round into a fixed number of shards; the tasks of the
    // round are the non-empty (rule, body position, shard) triples,
    // a decomposition that depends only on the data so that merge
    // order — and therefore row-id assignment — is identical for
    // every thread count.
    let mut hi = watermark(instance);
    let mut round = 1usize;
    while lo.iter().zip(hi.iter()).any(|(l, h)| l < h) {
        if expired(deadline) {
            return Err(BudgetExceeded::Deadline);
        }
        let mut round_span = vadalog_obs::span("datalog.round");
        let round_start = observing(&profile).then(Instant::now);
        let before = *stats;
        stats.iterations += 1;
        let deltas: Vec<DeltaRange> = preds
            .iter()
            .enumerate()
            .filter(|&(pred_index, _)| lo[pred_index] < hi[pred_index])
            .map(|(pred_index, &predicate)| DeltaRange {
                predicate,
                lo: lo[pred_index],
                hi: hi[pred_index],
            })
            .collect();
        let outputs = seeded_round(rules, specs, templates, &deltas, instance, threads);
        flush_round(outputs, scratch, instance, stats);
        let delta_rows = deltas.iter().map(|d| (d.hi - d.lo) as u64).sum();
        close_round(
            round,
            round_start,
            before,
            *stats,
            delta_rows,
            &mut round_span,
            &mut profile,
        );
        round += 1;
        lo = hi;
        hi = watermark(instance);
    }
    Ok(())
}

/// A stratified semi-naive Datalog engine for a fixed program.
#[derive(Debug, Clone)]
pub struct DatalogEngine {
    program: Program,
    stratification: Stratification,
    threads: usize,
}

impl DatalogEngine {
    /// Creates an engine. Fails if the program is not plain Datalog (i.e.
    /// contains existential variables or multi-atom heads).
    pub fn new(program: Program) -> Result<DatalogEngine, ModelError> {
        if !program.is_datalog() {
            return Err(ModelError::InvalidTgd(
                "the Datalog engine requires full single-head TGDs (no existentials)".into(),
            ));
        }
        let stratification = stratify(&program);
        Ok(DatalogEngine {
            program,
            stratification,
            threads: 1,
        })
    }

    /// Sets the number of evaluation worker threads (default 1 = sequential;
    /// 0 = all available parallelism). Results are bit-identical — answer
    /// sets, row-id order and counters — for every thread count.
    pub fn with_threads(mut self, threads: usize) -> DatalogEngine {
        self.threads = threads;
        self
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification used for evaluation.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Materialises all IDB predicates over `database`.
    pub fn evaluate(&self, database: &Database) -> DatalogResult {
        let mut instance = database.as_instance().clone();
        let mut stats = DatalogStats::default();
        let mut scratch = MergeScratch::new();

        for stratum in &self.stratification.strata {
            let rules: Vec<&_> = stratum
                .rules
                .iter()
                .map(|&i| &self.program.tgds()[i])
                .collect();
            // Compile every rule body once per stratum (head row templates
            // too); workers build their own (cheap) `Matcher` per task, so
            // nothing below clones a rule body or allocates per candidate.
            let specs: Vec<JoinSpec> = rules
                .iter()
                .map(|rule| JoinSpec::compile(&rule.body))
                .collect();
            let templates: Vec<RowTemplate> = rules
                .iter()
                .zip(specs.iter())
                .map(|(rule, spec)| spec.row_template(&rule.head[0]))
                .collect();
            let preds: Vec<Predicate> = stratum.predicates.iter().copied().collect();
            stratum_fixpoint(
                &rules,
                &specs,
                &templates,
                &preds,
                stratum.recursive,
                &mut instance,
                self.threads,
                &mut scratch,
                &mut stats,
                None,
                None,
            )
            .expect("unbudgeted fixpoint never cancels");
        }

        stats.peak_atoms = instance.len();
        DatalogResult { instance, stats }
    }

    /// Evaluates the program and answers the query in one call. The query
    /// itself is answered through the sharded CQ kernel on the engine's
    /// configured thread count (answer sets are thread-count independent).
    pub fn answers(&self, database: &Database, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate_with_threads(&self.evaluate(database).instance, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn engine(rules: &str) -> DatalogEngine {
        DatalogEngine::new(parse_rules(rules).unwrap()).unwrap()
    }

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    #[test]
    fn rejects_programs_with_existentials() {
        let p = parse_rules("r(X, Z) :- p(X).").unwrap();
        assert!(DatalogEngine::new(p).is_err());
    }

    #[test]
    fn linear_transitive_closure_over_a_chain() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c). edge(c, d). edge(d, e)."));
        // Closure of a 4-edge chain has 4+3+2+1 = 10 pairs.
        assert_eq!(result.stats.derived_atoms, 10);
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(result.answers(&q).len(), 10);
        assert!(result.holds(&parse_query("? :- t(a, e).").unwrap()));
    }

    #[test]
    fn nonlinear_transitive_closure_matches_linear_answers() {
        let lin = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let non = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c). edge(c, a). edge(c, d).");
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(lin.answers(&database, &q), non.answers(&database, &q));
    }

    #[test]
    fn mutually_recursive_predicates_are_evaluated_together() {
        let e = engine(
            "even(X) :- zero(X).\n even(Y) :- odd(X), succ(X, Y).\n odd(Y) :- even(X), succ(X, Y).",
        );
        let database = db("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).");
        let result = e.evaluate(&database);
        assert!(result.holds(&parse_query("? :- even(n0).").unwrap()));
        assert!(result.holds(&parse_query("? :- odd(n1).").unwrap()));
        assert!(result.holds(&parse_query("? :- even(n4).").unwrap()));
        assert!(!result.holds(&parse_query("? :- odd(n4).").unwrap()));
    }

    #[test]
    fn strata_are_evaluated_bottom_up() {
        let e = engine(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             reach_pair(X, Y) :- t(X, Y), red(Y).",
        );
        let database = db("edge(a, b). edge(b, c). red(c).");
        let result = e.evaluate(&database);
        let q = parse_query("?(X) :- reach_pair(X, Y).").unwrap();
        let answers = result.answers(&q);
        assert_eq!(answers.len(), 2); // a and b reach the red node c.
    }

    #[test]
    fn repeated_head_variables_are_handled() {
        let e = engine("loop(X, X) :- node(X).\n self(X) :- loop(X, X).");
        let result = e.evaluate(&db("node(a). node(b)."));
        assert!(result.holds(&parse_query("? :- self(a).").unwrap()));
        assert_eq!(result.stats.derived_atoms, 4);
    }

    #[test]
    fn empty_database_yields_no_derivations() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&Database::new());
        assert_eq!(result.stats.derived_atoms, 0);
    }

    #[test]
    fn constants_in_queries_filter_answers() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c).");
        let q = parse_query("?(Y) :- t(a, Y).").unwrap();
        let answers = e.answers(&database, &q);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn semi_naive_does_not_rederive_known_facts() {
        // On a cycle the naive algorithm would loop forever re-deriving the
        // same facts; the semi-naive loop must converge and stop.
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, a).");
        let result = e.evaluate(&database);
        assert_eq!(result.stats.derived_atoms, 4); // t(a,b) t(b,a) t(a,a) t(b,b)
        assert!(result.stats.iterations < 10);
    }

    #[test]
    fn peak_atoms_counts_edb_plus_idb() {
        let e = engine("t(X, Y) :- edge(X, Y).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c)."));
        assert_eq!(result.stats.peak_atoms, 4);
    }

    #[test]
    fn predicate_first_materialised_mid_stratum_gets_the_full_delta_range() {
        // `odd` has no relation when the stratum samples its first watermark
        // (a missing relation watermarks at 0) and is first materialised in
        // the second round. Its first delta must be exactly the new rows —
        // re-joining any earlier range would inflate `joins_evaluated`.
        let e = engine(
            "even(X) :- zero(X).\n even(Y) :- odd(X), succ(X, Y).\n odd(Y) :- even(X), succ(X, Y).",
        );
        let database = db("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).");
        let result = e.evaluate(&database);
        // even(n0), odd(n1), even(n2), odd(n3), even(n4).
        assert_eq!(result.stats.derived_atoms, 5);
        // Naive round: 3 rule invocations. Each semi-naive round seeds the
        // single new fact into the one differentiated position that accepts
        // it: rounds 2–6 contribute exactly one invocation each (the last
        // finds no successor and closes the fixpoint).
        assert_eq!(result.stats.joins_evaluated, 3 + 5);
        assert_eq!(result.stats.iterations, 6);
        assert!(result.holds(&parse_query("? :- even(n4).").unwrap()));
        assert!(!result.holds(&parse_query("? :- odd(n0).").unwrap()));
    }

    #[test]
    fn edb_seeded_idb_predicate_is_not_rejoined_as_delta() {
        // The database already holds a `t` fact. The stratum's first
        // watermark must cover it (the naive round joins it as part of the
        // full instance), so the first semi-naive delta contains only the
        // naive round's output — never the seed row again.
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(b, c). t(a, b)."));
        assert_eq!(result.stats.derived_atoms, 1); // t(b, c)
                                                   // Naive: 2 invocations. Round 2: only the new t(b, c) seeds the
                                                   // recursive position (1 invocation). A drifting watermark would
                                                   // re-seed t(a, b) for a 4th invocation — and on programs with
                                                   // existing matches, re-derive its consequences out of order.
        assert_eq!(result.stats.joins_evaluated, 3);
        assert_eq!(result.stats.iterations, 2);
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(result.answers(&q).len(), 2);
    }

    #[test]
    fn sharded_threads_are_bit_identical_to_sequential() {
        let program = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).";
        let database =
            db("edge(a, b). edge(b, c). edge(c, d). edge(d, a). edge(b, e). edge(e, f).");
        let sequential = engine(program).evaluate(&database);
        for threads in [2, 4] {
            let sharded = engine(program).with_threads(threads).evaluate(&database);
            assert_eq!(sharded.stats.derived_atoms, sequential.stats.derived_atoms);
            assert_eq!(
                sharded.stats.joins_evaluated,
                sequential.stats.joins_evaluated
            );
            assert_eq!(sharded.stats.join_probes, sequential.stats.join_probes);
            assert_eq!(sharded.stats.iterations, sequential.stats.iterations);
            assert_eq!(
                sharded.stats.rows_prededuped,
                sequential.stats.rows_prededuped
            );
            assert_eq!(
                sharded.stats.composite_probes,
                sequential.stats.composite_probes
            );
            assert_eq!(
                sharded.stats.probe_misses_filtered,
                sequential.stats.probe_misses_filtered
            );
            assert_eq!(
                sharded.instance.row_layout(),
                sequential.instance.row_layout(),
                "row-id assignment must not depend on the thread count"
            );
        }
    }

    #[test]
    fn workers_prededup_rederivations_before_the_merge() {
        // On a cycle the recursive rule re-derives closure facts that are
        // already materialised: those rows must be dropped by the workers
        // (observable in the counter) without changing any result.
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, a)."));
        assert_eq!(result.stats.derived_atoms, 4);
        assert!(
            result.stats.rows_prededuped > 0,
            "a cyclic closure re-derives known facts; workers must pre-dedup them"
        );
        // An acyclic single-pass program re-derives nothing.
        let straight = engine("t(X, Y) :- edge(X, Y).").evaluate(&db("edge(a, b)."));
        assert_eq!(straight.stats.rows_prededuped, 0);
    }

    #[test]
    fn join_counters_use_one_unit_across_phases() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c). edge(c, d)."));
        // Naive round: one invocation per rule (2). Semi-naive rounds: one
        // invocation per (rule, recursive position, delta fact); only the
        // second rule has a position in the recursive stratum.
        // Round 1 delta = {t(a,b), t(b,c), t(c,d)} → 3 invocations,
        // round 2 delta = {t(a,c), t(b,d)} → 2, round 3 delta = {t(a,d)} → 1.
        assert_eq!(result.stats.joins_evaluated, 2 + 3 + 2 + 1);
        assert!(result.stats.join_probes > 0);
    }
}
