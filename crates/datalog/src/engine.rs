//! Semi-naive bottom-up evaluation, driven by the streaming join kernel.
//!
//! Each rule body is compiled once per stratum into a
//! [`vadalog_model::JoinSpec`]; the naive round and every semi-naive round
//! reuse one [`vadalog_model::Matcher`] per rule, so the per-delta-fact work
//! is a [`Matcher::prematch`] against the delta row plus a streamed,
//! allocation-free join against the full instance — the rule body is never
//! cloned and no intermediate `Vec<Substitution>` is materialised.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use vadalog_analysis::stratify::{stratify, Stratification};
use vadalog_model::{
    Atom, ConjunctiveQuery, Database, Instance, JoinSpec, Matcher, ModelError, Program, Symbol,
};

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatalogStats {
    /// Total number of derived (IDB) atoms.
    pub derived_atoms: usize,
    /// Total number of atoms materialised (EDB + IDB) — the space proxy.
    pub peak_atoms: usize,
    /// Number of semi-naive iterations summed over all strata.
    pub iterations: usize,
    /// Number of join-kernel invocations. The counted unit is identical in
    /// both evaluation phases — one invocation of the join kernel — but the
    /// phases drive the kernel differently: the naive round invokes it once
    /// per rule (the whole instance is the driver), while semi-naive rounds
    /// invoke it once per (rule, differentiated body position, matching delta
    /// fact), the delta fact being the driver. For a driver-independent
    /// measure of join effort compare `join_probes`.
    pub joins_evaluated: usize,
    /// Candidate rows examined across all join-kernel invocations. Unlike
    /// `joins_evaluated` this unit is independent of what drives the join,
    /// so naive and semi-naive work is directly comparable.
    pub join_probes: u64,
}

/// The result of evaluating a Datalog program over a database.
#[derive(Debug, Clone)]
pub struct DatalogResult {
    /// The materialised instance (database facts plus derived facts).
    pub instance: Instance,
    /// Run statistics.
    pub stats: DatalogStats,
}

impl DatalogResult {
    /// Evaluates a conjunctive query over the materialised instance.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate(&self.instance)
    }

    /// `true` iff the Boolean query holds in the materialised instance.
    pub fn holds(&self, query: &ConjunctiveQuery) -> bool {
        query.holds_in(&self.instance)
    }
}

/// Drains the flat buffer of streamed head images into the instance,
/// counting newly derived atoms (which thereby extend the current delta
/// watermark range). The buffer holds `matches` rows of `head.arity()` terms
/// each; for 0-ary heads the row is empty and `matches` alone says whether
/// the fact was derived.
fn flush_derived(
    head: &Atom,
    matches: u64,
    derived: &mut Vec<vadalog_model::Term>,
    instance: &mut Instance,
    stats: &mut DatalogStats,
) {
    if head.arity() == 0 {
        if matches > 0 && instance.insert_terms(head.predicate, &[]).expect("ground") {
            stats.derived_atoms += 1;
        }
    } else {
        for row in derived.chunks_exact(head.arity()) {
            if instance
                .insert_terms(head.predicate, row)
                .expect("derived fact is ground")
            {
                stats.derived_atoms += 1;
            }
        }
    }
    derived.clear();
}

/// A stratified semi-naive Datalog engine for a fixed program.
#[derive(Debug, Clone)]
pub struct DatalogEngine {
    program: Program,
    stratification: Stratification,
}

impl DatalogEngine {
    /// Creates an engine. Fails if the program is not plain Datalog (i.e.
    /// contains existential variables or multi-atom heads).
    pub fn new(program: Program) -> Result<DatalogEngine, ModelError> {
        if !program.is_datalog() {
            return Err(ModelError::InvalidTgd(
                "the Datalog engine requires full single-head TGDs (no existentials)".into(),
            ));
        }
        let stratification = stratify(&program);
        Ok(DatalogEngine {
            program,
            stratification,
        })
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification used for evaluation.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Materialises all IDB predicates over `database`.
    pub fn evaluate(&self, database: &Database) -> DatalogResult {
        let mut instance = database.as_instance().clone();
        let mut stats = DatalogStats::default();
        // Reused flat buffer of head-image rows: the kernel streams matches
        // while the instance is immutably borrowed, so derivations are parked
        // here (head-arity chunks, no per-fact `Atom` allocation) and
        // inserted as soon as the enumeration finishes.
        let mut derived: Vec<vadalog_model::Term> = Vec::new();
        // Reused flat copies of the current round's delta ranges (one per
        // stratum predicate, snapshotted once per round), so the
        // per-delta-fact loops neither re-borrow the (mutating) instance per
        // row nor re-copy a range for every rule position that consumes it.
        let mut delta_snapshots: Vec<Vec<vadalog_model::Term>> = Vec::new();

        for stratum in &self.stratification.strata {
            let rules: Vec<&_> = stratum
                .rules
                .iter()
                .map(|&i| &self.program.tgds()[i])
                .collect();
            // Compile every rule body once per stratum; the matchers (and
            // their bind-state buffers) are reused across all rounds and all
            // delta facts — nothing inside the loops below clones a rule
            // body or allocates per candidate.
            let specs: Vec<JoinSpec> =
                rules.iter().map(|rule| JoinSpec::compile(&rule.body)).collect();
            let mut matchers: Vec<Matcher<'_>> = specs.iter().map(Matcher::new).collect();

            // The delta of a round is not a separate instance: rows are
            // append-only with stable ids, so "the facts derived in round
            // i" is exactly a per-relation row-id range. Each round records
            // the relation watermarks of the stratum's predicates and the
            // next round replays the rows between the previous and current
            // watermark — derivations stream straight into the instance and
            // become the delta for free, with no second copy and no second
            // hash of any row.
            let preds: Vec<_> = stratum.predicates.iter().copied().collect();
            let watermark = |instance: &Instance| -> Vec<u32> {
                preds
                    .iter()
                    .map(|&p| instance.relation(p).map(|r| r.len() as u32).unwrap_or(0))
                    .collect()
            };
            let mut lo = watermark(&instance);

            // Naive first round: evaluate every rule on the full instance.
            for (rule, matcher) in rules.iter().zip(matchers.iter_mut()) {
                let head = &rule.head[0];
                stats.joins_evaluated += 1;
                matcher.clear();
                let run = matcher.for_each(&instance, |bindings| {
                    derived.extend(head.terms.iter().map(|t| bindings.resolve(t)));
                    ControlFlow::Continue(())
                });
                stats.join_probes += run.probes;
                flush_derived(head, run.matches, &mut derived, &mut instance, &mut stats);
            }
            stats.iterations += 1;

            if !stratum.recursive {
                continue;
            }

            // Semi-naive rounds: differentiate each rule with respect to the
            // predicates of this stratum, seeding one body atom from the delta.
            delta_snapshots.resize_with(preds.len().max(delta_snapshots.len()), Vec::new);
            let mut arities: Vec<usize> = vec![0; preds.len()];
            let mut hi = watermark(&instance);
            while lo.iter().zip(hi.iter()).any(|(l, h)| l < h) {
                stats.iterations += 1;
                // Snapshot each predicate's delta range once for the round.
                for (pred_index, &p) in preds.iter().enumerate() {
                    let snapshot = &mut delta_snapshots[pred_index];
                    snapshot.clear();
                    if lo[pred_index] < hi[pred_index] {
                        let rel = instance.relation(p).expect("watermarked relation exists");
                        arities[pred_index] = rel.arity();
                        for row in lo[pred_index]..hi[pred_index] {
                            snapshot.extend_from_slice(rel.row(row));
                        }
                    }
                }
                for (rule_index, rule) in rules.iter().enumerate() {
                    for (pos, body_atom) in rule.body.iter().enumerate() {
                        let Some(pred_index) =
                            preds.iter().position(|&p| p == body_atom.predicate)
                        else {
                            continue;
                        };
                        let (start, end) = (lo[pred_index], hi[pred_index]);
                        if start == end || arities[pred_index] != body_atom.arity() {
                            continue;
                        }
                        let matcher = &mut matchers[rule_index];
                        let head = &rule.head[0];
                        let arity = arities[pred_index];
                        // Seed the differentiated atom from each delta row and
                        // join the remaining atoms against the full instance.
                        for index in 0..(end - start) as usize {
                            let delta_row = &delta_snapshots[pred_index][index * arity..][..arity];
                            matcher.clear();
                            if !matcher.prematch(pos, delta_row) {
                                continue;
                            }
                            stats.joins_evaluated += 1;
                            let run = matcher.for_each(&instance, |bindings| {
                                derived.extend(head.terms.iter().map(|t| bindings.resolve(t)));
                                ControlFlow::Continue(())
                            });
                            stats.join_probes += run.probes;
                            flush_derived(
                                head,
                                run.matches,
                                &mut derived,
                                &mut instance,
                                &mut stats,
                            );
                        }
                    }
                }
                lo = hi;
                hi = watermark(&instance);
            }
        }

        stats.peak_atoms = instance.len();
        DatalogResult { instance, stats }
    }

    /// Evaluates the program and answers the query in one call.
    pub fn answers(
        &self,
        database: &Database,
        query: &ConjunctiveQuery,
    ) -> BTreeSet<Vec<Symbol>> {
        self.evaluate(database).answers(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog_model::parser::{parse, parse_query, parse_rules};

    fn engine(rules: &str) -> DatalogEngine {
        DatalogEngine::new(parse_rules(rules).unwrap()).unwrap()
    }

    fn db(facts: &str) -> Database {
        parse(facts).unwrap().database
    }

    #[test]
    fn rejects_programs_with_existentials() {
        let p = parse_rules("r(X, Z) :- p(X).").unwrap();
        assert!(DatalogEngine::new(p).is_err());
    }

    #[test]
    fn linear_transitive_closure_over_a_chain() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c). edge(c, d). edge(d, e)."));
        // Closure of a 4-edge chain has 4+3+2+1 = 10 pairs.
        assert_eq!(result.stats.derived_atoms, 10);
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(result.answers(&q).len(), 10);
        assert!(result.holds(&parse_query("? :- t(a, e).").unwrap()));
    }

    #[test]
    fn nonlinear_transitive_closure_matches_linear_answers() {
        let lin = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let non = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- t(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c). edge(c, a). edge(c, d).");
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(lin.answers(&database, &q), non.answers(&database, &q));
    }

    #[test]
    fn mutually_recursive_predicates_are_evaluated_together() {
        let e = engine(
            "even(X) :- zero(X).\n even(Y) :- odd(X), succ(X, Y).\n odd(Y) :- even(X), succ(X, Y).",
        );
        let database = db("zero(n0). succ(n0, n1). succ(n1, n2). succ(n2, n3). succ(n3, n4).");
        let result = e.evaluate(&database);
        assert!(result.holds(&parse_query("? :- even(n0).").unwrap()));
        assert!(result.holds(&parse_query("? :- odd(n1).").unwrap()));
        assert!(result.holds(&parse_query("? :- even(n4).").unwrap()));
        assert!(!result.holds(&parse_query("? :- odd(n4).").unwrap()));
    }

    #[test]
    fn strata_are_evaluated_bottom_up() {
        let e = engine(
            "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
             reach_pair(X, Y) :- t(X, Y), red(Y).",
        );
        let database = db("edge(a, b). edge(b, c). red(c).");
        let result = e.evaluate(&database);
        let q = parse_query("?(X) :- reach_pair(X, Y).").unwrap();
        let answers = result.answers(&q);
        assert_eq!(answers.len(), 2); // a and b reach the red node c.
    }

    #[test]
    fn repeated_head_variables_are_handled() {
        let e = engine("loop(X, X) :- node(X).\n self(X) :- loop(X, X).");
        let result = e.evaluate(&db("node(a). node(b)."));
        assert!(result.holds(&parse_query("? :- self(a).").unwrap()));
        assert_eq!(result.stats.derived_atoms, 4);
    }

    #[test]
    fn empty_database_yields_no_derivations() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&Database::new());
        assert_eq!(result.stats.derived_atoms, 0);
    }

    #[test]
    fn constants_in_queries_filter_answers() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, c).");
        let q = parse_query("?(Y) :- t(a, Y).").unwrap();
        let answers = e.answers(&database, &q);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn semi_naive_does_not_rederive_known_facts() {
        // On a cycle the naive algorithm would loop forever re-deriving the
        // same facts; the semi-naive loop must converge and stop.
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let database = db("edge(a, b). edge(b, a).");
        let result = e.evaluate(&database);
        assert_eq!(result.stats.derived_atoms, 4); // t(a,b) t(b,a) t(a,a) t(b,b)
        assert!(result.stats.iterations < 10);
    }

    #[test]
    fn peak_atoms_counts_edb_plus_idb() {
        let e = engine("t(X, Y) :- edge(X, Y).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c)."));
        assert_eq!(result.stats.peak_atoms, 4);
    }

    #[test]
    fn join_counters_use_one_unit_across_phases() {
        let e = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        let result = e.evaluate(&db("edge(a, b). edge(b, c). edge(c, d)."));
        // Naive round: one invocation per rule (2). Semi-naive rounds: one
        // invocation per (rule, recursive position, delta fact); only the
        // second rule has a position in the recursive stratum.
        // Round 1 delta = {t(a,b), t(b,c), t(c,d)} → 3 invocations,
        // round 2 delta = {t(a,c), t(b,d)} → 2, round 3 delta = {t(a,d)} → 1.
        assert_eq!(result.stats.joins_evaluated, 2 + 3 + 2 + 1);
        assert!(result.stats.join_probes > 0);
    }
}
