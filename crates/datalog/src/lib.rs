//! A stratified, semi-naive Datalog evaluation engine.
//!
//! The paper compares (piece-wise linear) warded Datalog∃ against plain
//! (piece-wise linear) Datalog both complexity-wise and in expressive power
//! (Section 6). This crate provides the Datalog side of those comparisons:
//!
//! * it is the **target** of the Theorem 6.3 rewriting implemented in
//!   `vadalog-core::rewrite`, and
//! * it is the **baseline engine** used by the benchmark harness whenever a
//!   scenario is expressible in plain Datalog.
//!
//! Evaluation is bottom-up: the program is stratified by its recursive
//! components (`vadalog-analysis::stratify`), each stratum is saturated with
//! semi-naive iteration (rules are differentiated with respect to the
//! predicates of the current stratum, so work in round *i + 1* is driven only
//! by the atoms discovered in round *i*).
//!
//! Three engines share that round machinery:
//!
//! * [`DatalogEngine`] — batch full materialisation;
//! * [`IncrementalEngine`] — a live instance maintained at fixpoint across
//!   fact batches;
//! * [`DemandEngine`] — demand-driven (magic-sets) evaluation of bound
//!   queries against a frozen snapshot, with specialised programs cached
//!   per binding pattern ([`demand`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod engine;
pub mod explain;
pub mod incremental;

pub use demand::{
    DemandAnswer, DemandEngine, DemandError, DemandProfile, DemandStats, SpecialisedProgram,
};
pub use engine::{DatalogEngine, DatalogResult, DatalogStats, RoundProfile};
pub use explain::{explain_query, ExplainReport};
pub use incremental::{IncrementalEngine, IngestOutcome};
