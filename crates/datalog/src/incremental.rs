//! Incremental maintenance of a live materialisation.
//!
//! The Vadalog system of the paper is a *service*, not a batch job: facts
//! arrive continuously and certain-answer queries are served against a
//! maintained materialisation. An [`IncrementalEngine`] owns that live
//! [`Instance`] and keeps it at fixpoint across fact batches:
//!
//! * **Watermark deltas.** The store is append-only with stable row ids, so
//!   "everything that changed since the last ingest" is exactly, per
//!   relation, the rows past a remembered watermark — no shadow tables, no
//!   diff computation. Each successful [`IncrementalEngine::ingest`] ends by
//!   advancing every relation's watermark to its current row count.
//! * **Affected-strata pruning.** The program's stratification is evaluated
//!   bottom-up, but only for strata that the predicate graph proves
//!   *reachable* from the batch's touched predicates
//!   ([`vadalog_analysis::predicate_graph::PredicateGraph::reachable_from`]).
//!   Everything else is skipped without sampling a single watermark —
//!   observable as [`DatalogStats::strata_skipped`].
//! * **Delta-seeded semi-naive rounds.** An affected stratum restarts from
//!   its watermarks instead of from scratch: a first *seed round*
//!   differentiates every rule with respect to **all** body predicates that
//!   carry unprocessed rows (freshly ingested EDB facts and the rows lower
//!   strata derived this ingest), then the ordinary semi-naive recursion of
//!   the batch engine ([`crate::engine`]) runs on the stratum's own
//!   predicates. Rounds through this path are counted by
//!   [`DatalogStats::rounds_incremental`]. The union of everything ever
//!   ingested yields the same answer sets (and the same per-relation row
//!   *sets*) as a from-scratch evaluation; row-id *order* additionally
//!   depends on arrival order, never on the thread count.
//! * **Fail-closed ingestion.** A batch is packed and admission-checked in
//!   full *before* the first row lands: arity conflicts,
//!   [`ModelError::PackOverflow`], [`ModelError::NonGroundFact`] and the
//!   (configurable) per-relation row budget
//!   ([`IncrementalEngine::with_row_capacity`],
//!   [`ModelError::CapacityExceeded`]) all reject the batch with the live
//!   instance untouched — the engine stays serviceable, nothing is half
//!   applied.
//! * **Epoch snapshots.** Readers take [`InstanceSnapshot`]s
//!   ([`IncrementalEngine::snapshot`]): immutable, `Arc`-shared views frozen
//!   at the engine's current epoch (bumped once per successful ingest).
//!   Only the first snapshot of an epoch clones the instance; queries then
//!   run with no lock held, concurrently with the next ingest.

use crate::engine::{flush_round, seeded_round, DatalogStats, DeltaRange};
use std::collections::{BTreeMap, BTreeSet};
use vadalog_analysis::predicate_graph::PredicateGraph;
use vadalog_analysis::stratify::{stratify, Stratification};
use vadalog_model::{
    Atom, ConjunctiveQuery, Database, Instance, InstanceSnapshot, JoinSpec, MergeScratch,
    ModelError, PackedTerm, Predicate, Program, RowId, RowTemplate, SnapshotCell, Symbol, Tgd,
};

/// The per-stratum compilation the engine reuses across every ingest: join
/// specs and packed head row templates are built once, at construction.
#[derive(Debug, Clone)]
struct CompiledStratum {
    /// Indexes (into the program) of the stratum's rules.
    rule_indices: Vec<usize>,
    /// One compiled body per rule.
    specs: Vec<JoinSpec>,
    /// One packed head template per rule.
    templates: Vec<RowTemplate>,
    /// The stratum's own (head) predicates, in deterministic order.
    predicates: Vec<Predicate>,
    /// Distinct predicates occurring in the stratum's rule bodies, in
    /// first-occurrence order — the candidates for seed-round deltas.
    body_predicates: Vec<Predicate>,
    /// `true` iff the stratum is recursive (needs semi-naive recursion
    /// beyond the seed round).
    recursive: bool,
}

/// The report of one [`IncrementalEngine::ingest`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestOutcome {
    /// Batch facts that were genuinely new rows.
    pub facts_inserted: usize,
    /// Batch facts already present (dropped by the row dedup).
    pub facts_duplicate: usize,
    /// Atoms derived by re-evaluating the affected strata.
    pub derived_atoms: usize,
    /// Strata that ran a delta-seeded evaluation.
    pub strata_evaluated: usize,
    /// Strata skipped without evaluation (graph-pruned, or reachable but
    /// with no delta rows to seed).
    pub strata_skipped: usize,
    /// Fixpoint rounds executed (seed rounds plus semi-naive recursion).
    pub rounds: usize,
    /// The engine's epoch after the ingest.
    pub epoch: u64,
}

/// A long-lived engine maintaining a materialised instance under continuous
/// fact ingestion — see the [module docs](self) for the design.
#[derive(Debug)]
pub struct IncrementalEngine {
    program: Program,
    stratification: Stratification,
    graph: PredicateGraph,
    strata: Vec<CompiledStratum>,
    threads: usize,
    /// Admission bound on any single relation's row count. Defaults to the
    /// storage layer's own u32 bound; a live service can lower it to bound
    /// memory, rejecting (not half-applying) batches that would cross it.
    row_capacity: RowId,
    instance: Instance,
    /// Per-relation processed watermark: rows below it have been seen by
    /// every stratum; rows at or above it are the next ingest's delta.
    watermarks: BTreeMap<Predicate, RowId>,
    /// Cumulative statistics over all ingests.
    stats: DatalogStats,
    /// Bumped once per successful ingest that touched the instance.
    epoch: u64,
    snapshots: SnapshotCell,
}

impl Clone for IncrementalEngine {
    fn clone(&self) -> IncrementalEngine {
        IncrementalEngine {
            program: self.program.clone(),
            stratification: self.stratification.clone(),
            graph: self.graph.clone(),
            strata: self.strata.clone(),
            threads: self.threads,
            row_capacity: self.row_capacity,
            instance: self.instance.clone(),
            watermarks: self.watermarks.clone(),
            stats: self.stats,
            epoch: self.epoch,
            // Snapshot caches are per-engine; a clone starts cold.
            snapshots: SnapshotCell::new(),
        }
    }
}

impl IncrementalEngine {
    /// Creates an engine with an empty materialisation. Fails if the program
    /// is not plain Datalog (the same restriction as
    /// [`crate::DatalogEngine`]).
    pub fn new(program: Program) -> Result<IncrementalEngine, ModelError> {
        if !program.is_datalog() {
            return Err(ModelError::InvalidTgd(
                "the incremental engine requires full single-head TGDs (no existentials)".into(),
            ));
        }
        let stratification = stratify(&program);
        let graph = PredicateGraph::new(&program);
        let strata = stratification
            .strata
            .iter()
            .map(|stratum| {
                let rules: Vec<&Tgd> = stratum.rules.iter().map(|&i| &program.tgds()[i]).collect();
                let specs: Vec<JoinSpec> = rules
                    .iter()
                    .map(|rule| JoinSpec::compile(&rule.body))
                    .collect();
                let templates: Vec<RowTemplate> = rules
                    .iter()
                    .zip(specs.iter())
                    .map(|(rule, spec)| spec.row_template(&rule.head[0]))
                    .collect();
                let mut body_predicates = Vec::new();
                for rule in &rules {
                    for atom in &rule.body {
                        if !body_predicates.contains(&atom.predicate) {
                            body_predicates.push(atom.predicate);
                        }
                    }
                }
                CompiledStratum {
                    rule_indices: stratum.rules.clone(),
                    specs,
                    templates,
                    predicates: stratum.predicates.iter().copied().collect(),
                    body_predicates,
                    recursive: stratum.recursive,
                }
            })
            .collect();
        Ok(IncrementalEngine {
            program,
            stratification,
            graph,
            strata,
            threads: 1,
            row_capacity: RowId::MAX - 1,
            instance: Instance::new(),
            watermarks: BTreeMap::new(),
            stats: DatalogStats::default(),
            epoch: 0,
            snapshots: SnapshotCell::new(),
        })
    }

    /// Creates an engine and ingests a whole database as its first batch.
    pub fn from_database(
        program: Program,
        database: &Database,
    ) -> Result<IncrementalEngine, ModelError> {
        let mut engine = IncrementalEngine::new(program)?;
        engine.ingest_database(database)?;
        Ok(engine)
    }

    /// Sets the number of evaluation worker threads (default 1 = sequential;
    /// 0 = all available parallelism). Results are bit-identical for every
    /// thread count, exactly as for [`crate::DatalogEngine::with_threads`].
    pub fn with_threads(mut self, threads: usize) -> IncrementalEngine {
        self.threads = threads;
        self
    }

    /// Sets the per-relation row budget: an ingest that could push any
    /// relation past `capacity` rows is rejected **before** touching the
    /// instance, surfacing [`ModelError::CapacityExceeded`] while the engine
    /// stays serviceable. The check is conservative (batch duplicates count
    /// against the budget). Defaults to the storage layer's u32 bound.
    pub fn with_row_capacity(mut self, capacity: RowId) -> IncrementalEngine {
        self.row_capacity = capacity;
        self
    }

    /// The configured worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The stratification used for evaluation.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// The live materialised instance (database facts plus derived facts).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Cumulative statistics over all ingests.
    pub fn stats(&self) -> &DatalogStats {
        &self.stats
    }

    /// The current epoch: 0 for a fresh engine, bumped once per successful
    /// [`IncrementalEngine::ingest`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// An immutable snapshot of the materialisation at the current epoch.
    /// The first call after an ingest clones the instance; later calls at
    /// the same epoch are reference-count bumps. Readers evaluate against
    /// the snapshot with no engine lock held.
    pub fn snapshot(&self) -> InstanceSnapshot {
        self.snapshots.acquire(&self.instance, self.epoch)
    }

    /// Restores the engine to a previously captured materialisation state:
    /// the packed `instance`, the cumulative `stats`, and the `epoch`
    /// counter. Watermarks are recomputed as every relation's full row
    /// count — valid precisely because captured states are only ever taken
    /// *between* ingests, at fixpoint, when every row of every relation has
    /// been processed by every stratum. The snapshot cache starts cold.
    ///
    /// This is the recovery hook for a durability layer: restore the
    /// snapshotted state, then re-[`IncrementalEngine::ingest`] the logged
    /// tail. The state must come from an engine over the same program;
    /// restoring anything else yields well-defined but meaningless answers.
    pub fn restore_state(&mut self, instance: Instance, stats: DatalogStats, epoch: u64) {
        self.watermarks = instance
            .relations()
            .map(|rel| (rel.predicate(), rel.row_count()))
            .collect();
        self.instance = instance;
        self.stats = stats;
        self.epoch = epoch;
        self.snapshots = SnapshotCell::new();
    }

    /// Evaluates a conjunctive query over the live materialisation through
    /// the sharded CQ kernel on the engine's thread count.
    pub fn answers(&self, query: &ConjunctiveQuery) -> BTreeSet<Vec<Symbol>> {
        query.evaluate_with_threads(&self.instance, self.threads)
    }

    /// Ingests a whole database as one batch (facts in the database's
    /// iteration order).
    pub fn ingest_database(&mut self, database: &Database) -> Result<IngestOutcome, ModelError> {
        let facts: Vec<Atom> = database.iter().collect();
        self.ingest(&facts)
    }

    /// Ingests a batch of facts and restores the materialisation's fixpoint
    /// by re-evaluating exactly the strata reachable from the touched
    /// predicates, each restarting from its per-relation watermarks.
    ///
    /// The batch is validated in full first — on any error (`ArityMismatch`,
    /// `NonGroundFact`, `PackOverflow`, `CapacityExceeded`) **no row is
    /// inserted**, the epoch does not move, and the engine remains
    /// serviceable.
    pub fn ingest(&mut self, facts: &[Atom]) -> Result<IngestOutcome, ModelError> {
        // Phase 1: pack and admission-check the whole batch before the
        // first row lands.
        let mut packed_rows: Vec<Vec<PackedTerm>> = Vec::with_capacity(facts.len());
        let mut batch_arity: BTreeMap<Predicate, usize> = BTreeMap::new();
        let mut batch_rows: BTreeMap<Predicate, usize> = BTreeMap::new();
        for fact in facts {
            let expected = self
                .instance
                .arity_of(fact.predicate)
                .or_else(|| batch_arity.get(&fact.predicate).copied());
            if let Some(expected) = expected {
                if expected != fact.arity() {
                    return Err(ModelError::ArityMismatch {
                        predicate: fact.predicate.name().to_string(),
                        expected,
                        found: fact.arity(),
                    });
                }
            }
            batch_arity.entry(fact.predicate).or_insert(fact.arity());
            *batch_rows.entry(fact.predicate).or_insert(0) += 1;
            let mut row = Vec::with_capacity(fact.arity());
            for term in &fact.terms {
                match PackedTerm::pack(*term) {
                    Some(packed) => row.push(packed),
                    None if term.is_var() => {
                        return Err(ModelError::NonGroundFact(fact.to_string()))
                    }
                    None => {
                        return Err(ModelError::PackOverflow {
                            term: term.to_string(),
                        })
                    }
                }
            }
            packed_rows.push(row);
        }
        for (&predicate, &incoming) in &batch_rows {
            let existing = self
                .instance
                .relation(predicate)
                .map(|rel| rel.row_count())
                .unwrap_or(0) as usize;
            if existing + incoming > self.row_capacity as usize {
                return Err(ModelError::CapacityExceeded {
                    predicate: predicate.name().to_string(),
                    rows: existing,
                });
            }
        }

        // Phase 2: apply the batch (row ids follow batch order per
        // relation).
        let mut outcome = IngestOutcome::default();
        let mut touched: BTreeSet<Predicate> = BTreeSet::new();
        for (fact, row) in facts.iter().zip(packed_rows.iter()) {
            if self.instance.insert_packed(fact.predicate, row)? {
                outcome.facts_inserted += 1;
                touched.insert(fact.predicate);
            } else {
                outcome.facts_duplicate += 1;
            }
        }

        // Phase 3: re-derive through the affected strata only.
        if touched.is_empty() {
            outcome.strata_skipped = self.strata.len();
            self.stats.strata_skipped += self.strata.len();
            outcome.epoch = self.epoch;
            return Ok(outcome);
        }
        let affected = self.stratification.affected_strata(&self.graph, &touched);
        let derived_before = self.stats.derived_atoms;
        let rounds_before = self.stats.rounds_incremental;
        let mut scratch = MergeScratch::new();
        for (stratum, affected) in self.strata.iter().zip(affected) {
            let ran = affected
                && evaluate_stratum(
                    &self.program,
                    stratum,
                    &self.watermarks,
                    &mut self.instance,
                    self.threads,
                    &mut scratch,
                    &mut self.stats,
                );
            if ran {
                outcome.strata_evaluated += 1;
            } else {
                outcome.strata_skipped += 1;
                self.stats.strata_skipped += 1;
            }
        }
        outcome.derived_atoms = self.stats.derived_atoms - derived_before;
        outcome.rounds = self.stats.rounds_incremental - rounds_before;

        // Phase 4: every row now present has been processed by every
        // stratum that can see it — advance the watermarks and publish the
        // new epoch.
        for relation in self.instance.relations() {
            self.watermarks
                .insert(relation.predicate(), relation.row_count());
        }
        self.stats.peak_atoms = self.instance.len();
        self.epoch += 1;
        outcome.epoch = self.epoch;
        Ok(outcome)
    }
}

/// Runs the delta-seeded evaluation of one affected stratum: the seed round
/// differentiates every rule with respect to every body predicate carrying
/// unprocessed rows, then (for recursive strata) ordinary semi-naive
/// recursion on the stratum's own predicates closes the fixpoint. Returns
/// `false` — without running anything — when no body predicate carries a
/// delta (the stratum was reachable in the graph but no rows actually
/// arrived).
fn evaluate_stratum(
    program: &Program,
    stratum: &CompiledStratum,
    watermarks: &BTreeMap<Predicate, RowId>,
    instance: &mut Instance,
    threads: usize,
    scratch: &mut MergeScratch,
    stats: &mut DatalogStats,
) -> bool {
    let deltas: Vec<DeltaRange> = stratum
        .body_predicates
        .iter()
        .filter_map(|&predicate| {
            let hi = instance
                .relation(predicate)
                .map(|rel| rel.row_count())
                .unwrap_or(0);
            let lo = watermarks.get(&predicate).copied().unwrap_or(0).min(hi);
            (lo < hi).then_some(DeltaRange { predicate, lo, hi })
        })
        .collect();
    if deltas.is_empty() {
        return false;
    }
    let rules: Vec<&Tgd> = stratum
        .rule_indices
        .iter()
        .map(|&i| &program.tgds()[i])
        .collect();
    let watermark = |instance: &Instance| -> Vec<RowId> {
        stratum
            .predicates
            .iter()
            .map(|&p| instance.relation(p).map(|r| r.row_count()).unwrap_or(0))
            .collect()
    };

    // Seed round: the stratum's own predicates participate with their
    // unprocessed rows like any other body predicate; `lo` is sampled
    // before the merge, so the seed round's derivations — and only they —
    // form the recursion's first delta.
    let mut lo = watermark(instance);
    stats.iterations += 1;
    stats.rounds_incremental += 1;
    let outputs = seeded_round(
        &rules,
        &stratum.specs,
        &stratum.templates,
        &deltas,
        instance,
        threads,
    );
    flush_round(outputs, scratch, instance, stats);

    if stratum.recursive {
        let mut hi = watermark(instance);
        while lo.iter().zip(hi.iter()).any(|(l, h)| l < h) {
            stats.iterations += 1;
            stats.rounds_incremental += 1;
            let deltas: Vec<DeltaRange> = stratum
                .predicates
                .iter()
                .enumerate()
                .filter(|&(i, _)| lo[i] < hi[i])
                .map(|(i, &predicate)| DeltaRange {
                    predicate,
                    lo: lo[i],
                    hi: hi[i],
                })
                .collect();
            let outputs = seeded_round(
                &rules,
                &stratum.specs,
                &stratum.templates,
                &deltas,
                instance,
                threads,
            );
            flush_round(outputs, scratch, instance, stats);
            lo = hi;
            hi = watermark(instance);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatalogEngine;
    use vadalog_model::parser::{parse, parse_fact_list, parse_query, parse_rules};
    use vadalog_model::{NullId, Term};

    const TWO_CLOSURES: &str = "t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).\n\
                                s(X, Y) :- link(X, Y).\n s(X, Z) :- link(X, Y), s(Y, Z).";

    fn engine(rules: &str) -> IncrementalEngine {
        IncrementalEngine::new(parse_rules(rules).unwrap()).unwrap()
    }

    fn facts(src: &str) -> Vec<Atom> {
        parse_fact_list(src).unwrap()
    }

    /// Per-relation row sets in a canonical (sorted) form — the layout
    /// comparison that is arrival-order independent.
    fn sorted_rows(instance: &Instance) -> Vec<(String, Vec<String>)> {
        instance.sorted_row_layout()
    }

    #[test]
    fn incremental_stream_matches_one_shot_evaluation() {
        let mut live = engine(TWO_CLOSURES);
        live.ingest(&facts("edge(a, b). link(p, q).")).unwrap();
        live.ingest(&facts("edge(b, c).")).unwrap();
        live.ingest(&facts("edge(c, d). link(q, r).")).unwrap();

        let union = parse("edge(a, b). link(p, q). edge(b, c). edge(c, d). link(q, r).")
            .unwrap()
            .database;
        let oneshot = DatalogEngine::new(parse_rules(TWO_CLOSURES).unwrap())
            .unwrap()
            .evaluate(&union);
        for query in ["?(X, Y) :- t(X, Y).", "?(X, Y) :- s(X, Y)."] {
            let q = parse_query(query).unwrap();
            assert_eq!(live.answers(&q), oneshot.answers(&q), "{query}");
        }
        assert_eq!(sorted_rows(live.instance()), sorted_rows(&oneshot.instance));
        assert_eq!(live.stats().derived_atoms, oneshot.stats.derived_atoms);
        assert_eq!(live.stats().peak_atoms, oneshot.stats.peak_atoms);
        assert_eq!(live.epoch(), 3);
    }

    #[test]
    fn restored_state_continues_bit_identically() {
        // Reference: one engine runs the whole stream uninterrupted.
        let batches = [
            "edge(a, b). link(p, q).",
            "edge(b, c).",
            "edge(c, d). link(q, r).",
            "edge(a, d).",
        ];
        let mut reference = engine(TWO_CLOSURES).with_threads(2);
        // Capture after the second batch — mid-stream, at fixpoint.
        let mut captured = None;
        for (i, batch) in batches.iter().enumerate() {
            reference.ingest(&facts(batch)).unwrap();
            if i == 1 {
                captured = Some((
                    reference.instance().clone(),
                    *reference.stats(),
                    reference.epoch(),
                ));
            }
        }

        // A fresh engine restores the captured state and replays the tail.
        let (instance, stats, epoch) = captured.unwrap();
        let mut restored = engine(TWO_CLOSURES).with_threads(2);
        restored.restore_state(instance, stats, epoch);
        assert_eq!(restored.epoch(), 2);
        for batch in &batches[2..] {
            restored.ingest(&facts(batch)).unwrap();
        }

        // Bit-identity: exact row layouts (arrival order included), all
        // counters, and the epoch.
        assert_eq!(
            restored.instance().row_layout(),
            reference.instance().row_layout()
        );
        assert_eq!(restored.stats(), reference.stats());
        assert_eq!(restored.epoch(), reference.epoch());
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(restored.answers(&q), reference.answers(&q));
    }

    #[test]
    fn unaffected_strata_are_provably_skipped() {
        let mut live = engine(TWO_CLOSURES);
        live.ingest(&facts("edge(a, b). edge(b, c). link(p, q). link(q, r)."))
            .unwrap();
        let skipped_before = live.stats().strata_skipped;

        // A delta touching only `edge` must skip the link/s stratum.
        let outcome = live.ingest(&facts("edge(c, d).")).unwrap();
        assert_eq!(outcome.strata_evaluated, 1);
        assert_eq!(outcome.strata_skipped, 1);
        assert!(outcome.rounds >= 1);
        assert_eq!(live.stats().strata_skipped, skipped_before + 1);
        assert!(
            live.answers(&parse_query("?(X) :- t(X, d).").unwrap())
                .len()
                == 3
        );

        // A duplicate-only batch touches nothing and skips everything.
        let outcome = live.ingest(&facts("edge(a, b).")).unwrap();
        assert_eq!(outcome.facts_inserted, 0);
        assert_eq!(outcome.facts_duplicate, 1);
        assert_eq!(outcome.strata_evaluated, 0);
        assert_eq!(outcome.strata_skipped, 2);
        assert_eq!(outcome.derived_atoms, 0);
    }

    #[test]
    fn directly_ingested_idb_facts_are_seeded() {
        // Ingesting a `t` fact must feed the recursive closure exactly like
        // the batch engine's EDB-seeded IDB handling.
        let mut live = engine("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).");
        live.ingest(&facts("edge(b, c).")).unwrap();
        let outcome = live.ingest(&facts("t(a, b).")).unwrap();
        assert_eq!(outcome.facts_inserted, 1);
        assert_eq!(outcome.strata_evaluated, 1);
        // t(a, b) is directly ingested, nothing derives from it backwards —
        // but edge(a', ...) chains forward: here nothing new derives.
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        let live_answers = live.answers(&q);
        let union = parse("edge(b, c). t(a, b).").unwrap().database;
        let oneshot = DatalogEngine::new(
            parse_rules("t(X, Y) :- edge(X, Y).\n t(X, Z) :- edge(X, Y), t(Y, Z).").unwrap(),
        )
        .unwrap()
        .evaluate(&union);
        assert_eq!(live_answers, oneshot.answers(&q));
        assert_eq!(sorted_rows(live.instance()), sorted_rows(&oneshot.instance));
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let stream = [
            "edge(a, b). edge(b, c). link(p, q).",
            "edge(c, a). edge(b, e).",
            "edge(e, f). link(q, p).",
        ];
        let run = |threads: usize| {
            let mut live = engine(TWO_CLOSURES).with_threads(threads);
            for batch in stream {
                live.ingest(&facts(batch)).unwrap();
            }
            live
        };
        let sequential = run(1);
        for threads in [2, 4] {
            let sharded = run(threads);
            assert_eq!(
                sharded.instance().row_layout(),
                sequential.instance().row_layout(),
                "row-id assignment must not depend on the thread count"
            );
            let (a, b) = (sharded.stats(), sequential.stats());
            assert_eq!(a.derived_atoms, b.derived_atoms);
            assert_eq!(a.joins_evaluated, b.joins_evaluated);
            assert_eq!(a.join_probes, b.join_probes);
            assert_eq!(a.rows_prededuped, b.rows_prededuped);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.strata_skipped, b.strata_skipped);
            assert_eq!(a.rounds_incremental, b.rounds_incremental);
        }
    }

    #[test]
    fn pack_overflow_rejects_the_batch_without_poisoning_the_engine() {
        let mut live = engine(TWO_CLOSURES);
        live.ingest(&facts("edge(a, b). edge(b, c).")).unwrap();
        let answers_before = live.answers(&parse_query("?(X, Y) :- t(X, Y).").unwrap());
        let epoch_before = live.epoch();
        let len_before = live.instance().len();

        // A null id past the 30-bit dictionary cannot be packed; the good
        // fact in front of it must not land either.
        let bad = vec![
            Atom::fact("edge", &["c", "d"]),
            Atom::new(
                "edge",
                vec![Term::constant("x"), Term::Null(NullId(1 << 40))],
            ),
        ];
        let err = live.ingest(&bad).unwrap_err();
        assert!(matches!(err, ModelError::PackOverflow { .. }));
        assert_eq!(live.instance().len(), len_before, "no partial batch");
        assert_eq!(live.epoch(), epoch_before, "epoch does not move");
        assert_eq!(
            live.answers(&parse_query("?(X, Y) :- t(X, Y).").unwrap()),
            answers_before
        );

        // The engine stays serviceable: the next good batch lands normally
        // and derives through the closure.
        let outcome = live.ingest(&facts("edge(c, d).")).unwrap();
        assert_eq!(outcome.facts_inserted, 1);
        let q = parse_query("?(X) :- t(X, d).").unwrap();
        assert_eq!(live.answers(&q).len(), 3); // a, b and c reach d
    }

    #[test]
    fn capacity_budget_rejects_batches_before_any_row_lands() {
        let mut live = engine(TWO_CLOSURES).with_row_capacity(3);
        live.ingest(&facts("edge(a, b). edge(b, c).")).unwrap();
        let len_before = live.instance().len();

        // 2 existing + 2 incoming > 3: rejected up front.
        let err = live.ingest(&facts("edge(c, d). edge(d, e).")).unwrap_err();
        assert!(matches!(err, ModelError::CapacityExceeded { .. }));
        assert_eq!(live.instance().len(), len_before);

        // One more row fits; after that even a single row is rejected, and
        // the engine keeps serving queries throughout.
        live.ingest(&facts("edge(c, d).")).unwrap();
        let err = live.ingest(&facts("edge(d, e).")).unwrap_err();
        assert!(matches!(err, ModelError::CapacityExceeded { .. }));
        let q = parse_query("?(X) :- t(a, X).").unwrap();
        assert_eq!(live.answers(&q).len(), 3); // b, c, d

        // The budget constrains EDB relations and derived relations alike —
        // `t` already exceeded it, but only *ingests* are admission-checked.
        assert!(live.instance().relation_size(Predicate::new("t")) > 3);
    }

    #[test]
    fn arity_and_groundness_errors_reject_the_whole_batch() {
        let mut live = engine(TWO_CLOSURES);
        live.ingest(&facts("edge(a, b).")).unwrap();
        let len_before = live.instance().len();
        let err = live
            .ingest(&[
                Atom::fact("good", &["x"]),
                Atom::fact("edge", &["a", "b", "c"]),
            ])
            .unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
        assert_eq!(
            live.instance().len(),
            len_before,
            "the good fact must not land"
        );

        let err = live
            .ingest(&[Atom::new(
                "edge",
                vec![Term::variable("X"), Term::constant("b")],
            )])
            .unwrap_err();
        assert!(matches!(err, ModelError::NonGroundFact(_)));
        assert_eq!(live.instance().len(), len_before);

        // Arity conflicts *within* a batch are caught too.
        let err = live
            .ingest(&[
                Atom::fact("fresh", &["x"]),
                Atom::fact("fresh", &["x", "y"]),
            ])
            .unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
        assert_eq!(live.instance().len(), len_before);
    }

    #[test]
    fn snapshots_are_epoch_stable_while_ingestion_continues() {
        let mut live = engine(TWO_CLOSURES);
        live.ingest(&facts("edge(a, b).")).unwrap();
        let snap = live.snapshot();
        assert_eq!(snap.epoch(), 1);
        let again = live.snapshot();
        assert_eq!(again.epoch(), 1);

        live.ingest(&facts("edge(b, c).")).unwrap();
        // The old snapshot still answers against epoch 1.
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(q.evaluate(&snap).len(), 1);
        let fresh = live.snapshot();
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(q.evaluate(&fresh).len(), 3);
    }

    #[test]
    fn rejects_programs_with_existentials() {
        let program = parse_rules("r(X, Z) :- p(X).").unwrap();
        assert!(IncrementalEngine::new(program).is_err());
    }

    #[test]
    fn from_database_seeds_like_the_batch_engine() {
        let parsed = parse("edge(a, b). edge(b, c). edge(c, d).").unwrap();
        let program = parse_rules(TWO_CLOSURES).unwrap();
        let live = IncrementalEngine::from_database(program.clone(), &parsed.database).unwrap();
        let oneshot = DatalogEngine::new(program)
            .unwrap()
            .evaluate(&parsed.database);
        let q = parse_query("?(X, Y) :- t(X, Y).").unwrap();
        assert_eq!(live.answers(&q), oneshot.answers(&q));
        assert_eq!(sorted_rows(live.instance()), sorted_rows(&oneshot.instance));
        assert_eq!(live.stats().derived_atoms, oneshot.stats.derived_atoms);
    }
}
