//! Umbrella crate re-exporting the whole Vadalog reproduction workspace.
#![forbid(unsafe_code)]

pub use vadalog_analysis as analysis;
pub use vadalog_benchgen as benchgen;
pub use vadalog_chase as chase;
pub use vadalog_core as core;
pub use vadalog_datalog as datalog;
pub use vadalog_engine as engine;
pub use vadalog_model as model;
pub use vadalog_obs as obs;
pub use vadalog_service as service;
pub use vadalog_tiling as tiling;
